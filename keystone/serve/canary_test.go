package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"keystoneml/keystone"
)

// fitSlowMarker is fitFloatMarker with a per-record service delay, for
// degraded-candidate and overload scenarios.
func fitSlowMarker(t testing.TB, mark float64, delay time.Duration) *keystone.Fitted[float64, []float64] {
	t.Helper()
	p := keystone.Input[float64]()
	out := keystone.Then(p, keystone.NewOp(fmt.Sprintf("slow[%g]", mark), func(x float64) []float64 {
		time.Sleep(delay)
		return []float64{mark, x}
	}))
	f, err := out.Fit(context.Background(), []float64{1, 2}, nil,
		keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		t.Fatalf("fit slow marker: %v", err)
	}
	return f
}

// TestCanaryFractionHonored drives concurrent traffic through a 25%
// canary and checks the candidate's measured share lands within
// tolerance — the deterministic splitter should be exact to ±1 request,
// the tolerance only absorbs scheduling noise between pick and serve.
func TestCanaryFractionHonored(t *testing.T) {
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{},
		WithBatchLimits(8, 200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	// Pre-canary traffic: CanaryStats must report same-window deltas, not
	// the primary's whole history against the candidate's fresh counters.
	const warmup = 37
	for i := 0; i < warmup; i++ {
		if _, err := rt.Predict(context.Background(), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	const fraction = 0.25
	ver, err := rt.Canary(context.Background(), fitFloatMarker(t, 2), fraction)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 2 {
		t.Fatalf("candidate version = %d, want 2", ver)
	}

	const total = 2000
	var primary, candidate, failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < total/8; i++ {
				out, err := rt.Predict(context.Background(), float64(i))
				if err != nil {
					failures.Add(1)
					continue
				}
				switch out[0] {
				case 1:
					primary.Add(1)
				case 2:
					candidate.Add(1)
				default:
					t.Errorf("output from unknown artifact: %v", out)
				}
			}
		}(c)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed under the canary", failures.Load())
	}
	got := float64(candidate.Load()) / float64(total)
	if got < fraction-0.05 || got > fraction+0.05 {
		t.Fatalf("candidate share = %.3f (%d/%d), want %.2f ± 0.05", got, candidate.Load(), total, fraction)
	}
	stats, ok := rt.CanaryStats()
	if !ok || stats.Mode != "canary" || stats.CandidateVersion != 2 {
		t.Fatalf("CanaryStats = %+v, %v", stats, ok)
	}
	if stats.CandidateServed != candidate.Load() || stats.PrimaryServed != primary.Load() {
		t.Fatalf("per-version served (%d, %d) != post-stage client counts (%d, %d) — warmup traffic must be excluded",
			stats.PrimaryServed, stats.CandidateServed, primary.Load(), candidate.Load())
	}
	if err := rt.Abort(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Logf("candidate share %.3f over %d requests", got, total)
}

// TestCanaryAbortLossless hammers a route while a canary is staged and
// aborted: zero failures allowed, and after the abort all traffic is
// back on the primary.
func TestCanaryAbortLossless(t *testing.T) {
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{},
		WithBatchLimits(4, 200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var requests, failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if _, err := rt.Predict(context.Background(), float64(i)); err != nil {
					failures.Add(1)
					t.Errorf("request failed: %v", err)
					return
				}
				requests.Add(1)
			}
		}()
	}

	for round := 0; round < 5; round++ {
		if _, err := rt.Canary(context.Background(), fitFloatMarker(t, 2), 0.5); err != nil {
			t.Fatalf("round %d canary: %v", round, err)
		}
		// Deploys and rollbacks must be refused while the canary runs.
		if _, err := rt.Deploy(context.Background(), fitFloatMarker(t, 9)); !errors.Is(err, ErrCanaryActive) {
			t.Fatalf("Deploy during canary = %v, want ErrCanaryActive", err)
		}
		time.Sleep(2 * time.Millisecond)
		if err := rt.Abort(context.Background()); err != nil {
			t.Fatalf("round %d abort: %v", round, err)
		}
	}
	time.Sleep(2 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed across canary aborts", failures.Load(), requests.Load())
	}
	if live := rt.LiveVersion(); live != 1 {
		t.Fatalf("live version after aborts = %d, want 1", live)
	}
	if out, err := rt.Predict(context.Background(), 3); err != nil || out[0] != 1 {
		t.Fatalf("post-abort predict = %v, %v; want primary mark 1", out, err)
	}
}

// TestCanaryPromote: promoting hands all traffic to the candidate and
// the old primary drains; a later rollback restores the pre-canary
// artifact (not the candidate, not an aborted one).
func TestCanaryPromote(t *testing.T) {
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{},
		WithBatchLimits(4, 200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Canary(context.Background(), fitFloatMarker(t, 2), 0.1); err != nil {
		t.Fatal(err)
	}
	ver, err := rt.Promote(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ver != 2 || rt.LiveVersion() != 2 {
		t.Fatalf("promoted version = %d (live %d), want 2", ver, rt.LiveVersion())
	}
	for i := 0; i < 20; i++ {
		out, err := rt.Predict(context.Background(), float64(i))
		if err != nil || out[0] != 2 {
			t.Fatalf("post-promote predict = %v, %v; want candidate mark 2", out, err)
		}
	}
	// Rollback targets the version that held traffic before the promote.
	ver, err = rt.Rollback(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out, _ := rt.Predict(context.Background(), 0); out[0] != 1 {
		t.Fatalf("post-rollback mark = %v, want 1 (version %d)", out[0], ver)
	}
}

// TestRollbackSkipsAbortedCandidate: an aborted candidate sits in the
// append-only history but must never become a rollback target.
func TestRollbackSkipsAbortedCandidate(t *testing.T) {
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Canary(context.Background(), fitFloatMarker(t, 66), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := rt.Abort(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Deploy(context.Background(), fitFloatMarker(t, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Rollback(context.Background()); err != nil {
		t.Fatal(err)
	}
	out, err := rt.Predict(context.Background(), 0)
	if err != nil || out[0] != 1 {
		t.Fatalf("rollback served mark %v, want 1 (the pre-deploy primary, not the aborted candidate)", out)
	}
}

// TestCanaryValidation covers the lifecycle error surface.
func TestCanaryValidation(t *testing.T) {
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := rt.Canary(ctx, fitFloatMarker(t, 2), 0); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, err := rt.Canary(ctx, fitFloatMarker(t, 2), 1); err == nil {
		t.Error("fraction 1 accepted")
	}
	if _, err := rt.Canary(ctx, nil, 0.5); err == nil {
		t.Error("nil fitted accepted")
	}
	if _, err := rt.Promote(ctx); !errors.Is(err, ErrNoCanary) {
		t.Errorf("Promote without canary = %v, want ErrNoCanary", err)
	}
	if err := rt.Abort(ctx); !errors.Is(err, ErrNoCanary) {
		t.Errorf("Abort without canary = %v, want ErrNoCanary", err)
	}
	if _, err := rt.Canary(ctx, fitFloatMarker(t, 2), 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Canary(ctx, fitFloatMarker(t, 3), 0.5); !errors.Is(err, ErrCanaryActive) {
		t.Errorf("second canary = %v, want ErrCanaryActive", err)
	}
	if _, err := rt.Shadow(ctx, fitFloatMarker(t, 3)); !errors.Is(err, ErrCanaryActive) {
		t.Errorf("shadow during canary = %v, want ErrCanaryActive", err)
	}
	if _, err := rt.Rollback(ctx); !errors.Is(err, ErrCanaryActive) {
		t.Errorf("rollback during canary = %v, want ErrCanaryActive", err)
	}
}

// TestShadowNonBlocking is the bounded-epsilon guarantee: with a shadow
// candidate that takes ~300ms per record, primary requests must keep
// completing at primary speed — mirroring may never block, queue behind,
// or otherwise couple the candidate's latency into the live path.
func TestShadowNonBlocking(t *testing.T) {
	s := NewServer()
	defer s.Close()
	// The short route timeout bounds each mirror's wait, so the abort
	// below drains quickly even against the slow candidate.
	rt, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{},
		WithBatchLimits(4, 100*time.Microsecond), WithTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Shadow(context.Background(), fitSlowMarker(t, 2, 300*time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	// 40 sequential requests against a 300ms-per-record shadow: if any
	// mirror coupling existed the run would take >12s; the primary path
	// must stay in the low-millisecond range per request.
	const reqs = 40
	start := time.Now()
	for i := 0; i < reqs; i++ {
		t0 := time.Now()
		out, err := rt.Predict(context.Background(), float64(i))
		if err != nil || out[0] != 1 {
			t.Fatalf("request %d = %v, %v; want primary mark 1", i, out, err)
		}
		if d := time.Since(t0); d > 100*time.Millisecond {
			t.Fatalf("request %d took %v with a slow shadow staged — mirroring blocked the primary", i, d)
		}
	}
	elapsed := time.Since(start)

	stats, ok := rt.CanaryStats()
	if !ok || stats.Mode != "shadow" {
		t.Fatalf("CanaryStats = %+v, %v; want shadow mode", stats, ok)
	}
	// Every request was either mirrored (possibly still in flight) or
	// dropped at the cap; none may have slowed the primary.
	if stats.PrimaryServed != reqs {
		t.Fatalf("primary served %d, want %d", stats.PrimaryServed, reqs)
	}
	if err := rt.Abort(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d primary requests in %v alongside a 300ms/record shadow (%d mirrors completed, %d dropped)",
		reqs, elapsed, stats.CandidateServed, stats.ShadowDropped)
}

// TestShadowMirrorsTraffic: with a healthy candidate every request is
// mirrored, responses stay primary-only, and the candidate's window
// fills with real observations.
func TestShadowMirrorsTraffic(t *testing.T) {
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{},
		WithBatchLimits(8, 100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Shadow(context.Background(), fitFloatMarker(t, 2)); err != nil {
		t.Fatal(err)
	}
	const reqs = 200
	for i := 0; i < reqs; i++ {
		out, err := rt.Predict(context.Background(), float64(i))
		if err != nil || out[0] != 1 {
			t.Fatalf("request %d = %v, %v; want primary mark 1", i, out, err)
		}
	}
	// Mirrors are async; wait for them to drain (bounded).
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, ok := rt.CanaryStats()
		if !ok {
			t.Fatal("shadow vanished")
		}
		if stats.CandidateServed+stats.ShadowDropped+stats.CandidateErrors >= reqs {
			if stats.CandidateServed == 0 {
				t.Fatalf("all %d mirrors dropped; want some served", reqs)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirrors never drained: %+v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := rt.Abort(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCanaryHTTP drives the full canary lifecycle over the HTTP surface:
// stage via refit, read the comparison, promote, and check conflicts map
// to 409.
func TestCanaryHTTP(t *testing.T) {
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "text", fitTextMarker(t, 1, 0), TextCodec{},
		WithBatchLimits(4, 200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	var refits atomic.Int64
	rt.SetRefit(func(context.Context) (*keystone.Fitted[string, []float64], error) {
		refits.Add(1)
		return fitTextMarker(t, 0, 1), nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// No canary yet: GET is 404, promote/abort are 409.
	if code := httpCode(t, http.MethodGet, ts.URL+"/routes/text/canary", ""); code != http.StatusNotFound {
		t.Fatalf("GET canary with none staged = %d, want 404", code)
	}
	if code := httpCode(t, http.MethodPost, ts.URL+"/routes/text/promote", ""); code != http.StatusConflict {
		t.Fatalf("promote with none staged = %d, want 409", code)
	}

	// A bad fraction is the caller's 400 and must be rejected before the
	// (expensive) refit runs.
	if code := httpCode(t, http.MethodPost, ts.URL+"/routes/text/canary", `{"fraction":1.5}`); code != http.StatusBadRequest {
		t.Fatalf("out-of-range fraction = %d, want 400", code)
	}
	// An explicit zero is out of range too — only an absent field
	// defaults to 0.1.
	if code := httpCode(t, http.MethodPost, ts.URL+"/routes/text/canary", `{"fraction":0}`); code != http.StatusBadRequest {
		t.Fatalf("explicit zero fraction = %d, want 400", code)
	}
	if n := refits.Load(); n != 0 {
		t.Fatalf("refit ran %d times for invalid fractions; validation must come first", n)
	}

	// Stage at 30% via the refitter.
	resp, err := http.Post(ts.URL+"/routes/text/canary", "application/json", strings.NewReader(`{"fraction":0.3}`))
	if err != nil {
		t.Fatal(err)
	}
	var staged struct {
		CandidateVersion int     `json:"candidate_version"`
		Fraction         float64 `json:"fraction"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&staged); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || staged.CandidateVersion != 2 || staged.Fraction != 0.3 {
		t.Fatalf("stage canary: code %d, %+v", resp.StatusCode, staged)
	}

	// Staging again conflicts.
	if code := httpCode(t, http.MethodPost, ts.URL+"/routes/text/canary", `{"fraction":0.5}`); code != http.StatusConflict {
		t.Fatalf("double stage = %d, want 409", code)
	}
	if code := httpCode(t, http.MethodPost, ts.URL+"/routes/text/deploy", ""); code != http.StatusConflict {
		t.Fatalf("deploy during canary = %d, want 409", code)
	}

	// Drive traffic, then read the comparison.
	for i := 0; i < 60; i++ {
		if code := httpCode(t, http.MethodPost, ts.URL+"/predict", `{"text":"x"}`); code != http.StatusOK {
			t.Fatalf("predict under canary = %d", code)
		}
	}
	resp, err = http.Get(ts.URL + "/routes/text/canary")
	if err != nil {
		t.Fatal(err)
	}
	var cmp struct {
		Mode      string  `json:"mode"`
		Fraction  float64 `json:"fraction"`
		Primary   struct{ Served int64 }
		Candidate struct{ Served int64 }
	}
	if err := json.NewDecoder(resp.Body).Decode(&cmp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cmp.Mode != "canary" || cmp.Primary.Served == 0 || cmp.Candidate.Served == 0 {
		t.Fatalf("comparison = %+v; want traffic on both versions", cmp)
	}

	// Promote and verify the candidate's marker answers.
	if code := httpCode(t, http.MethodPost, ts.URL+"/routes/text/promote", ""); code != http.StatusOK {
		t.Fatalf("promote = %d", code)
	}
	resp, err = http.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{"text":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	var pred Prediction
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pred.Class != 1 {
		t.Fatalf("post-promote class = %d, want 1 (the candidate artifact)", pred.Class)
	}

	// Shadow endpoint, then abort it.
	if code := httpCode(t, http.MethodPost, ts.URL+"/routes/text/shadow", ""); code != http.StatusOK {
		t.Fatalf("shadow = %d", code)
	}
	if code := httpCode(t, http.MethodPost, ts.URL+"/routes/text/abort", ""); code != http.StatusOK {
		t.Fatalf("abort = %d", code)
	}
}

// httpCode issues a request with an optional JSON body and returns the
// status code.
func httpCode(t *testing.T, method, url, body string) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}
