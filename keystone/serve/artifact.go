package serve

import (
	"context"
	"fmt"

	"keystoneml/keystone"
)

// ArtifactStore is the artifact registry surface a route uses for
// durable version history: content-addressed put/get plus mutable tags.
// keystoneml/keystone/registry.Registry satisfies it; the interface
// keeps serve decoupled from any one on-disk layout.
type ArtifactStore interface {
	// Put stores artifact bytes and returns their content address.
	Put(data []byte) (string, error)
	// Get fetches the artifact stored under a full content address.
	Get(id string) ([]byte, error)
	// Resolve turns a tag, id, or unique id prefix into a full id.
	Resolve(ref string) (string, error)
	// Tag points name at the object ref resolves to, atomically.
	Tag(name, ref string) error
}

// WithArtifactStore binds the route to an artifact registry at Register
// time. Every version that takes traffic afterwards is encoded and
// stored under its content address, the version history records the
// artifact ids, and the tags "<route>.live" and "<route>.previous" track
// the last swap — which is what lets Rollback cross a process restart:
// a rebooted route with no in-memory history pulls "<route>.previous"
// from the store. Registration fails if the initial fitted pipeline
// cannot be encoded (see keystone.Encode).
func WithArtifactStore(store ArtifactStore) RouteOption {
	return func(c *routeConfig) { c.store = store }
}

// RegisterArtifact registers a route serving an artifact pulled from the
// store instead of a freshly trained pipeline: ref is resolved, the
// artifact decoded as a Fitted[I, O], and the route registered with the
// store bound (as WithArtifactStore) and the version history seeded with
// the artifact's id — no re-encode, so the id the route reports is
// exactly the id it was booted from.
func RegisterArtifact[I, O any](s *Server, name string, store ArtifactStore, ref string, codec Codec[I, O], opts ...RouteOption) (*Route[I, O], error) {
	if store == nil {
		return nil, fmt.Errorf("serve: RegisterArtifact on route %q with nil store", name)
	}
	id, err := store.Resolve(ref)
	if err != nil {
		return nil, fmt.Errorf("serve: route %q artifact %q: %w", name, ref, err)
	}
	data, err := store.Get(id)
	if err != nil {
		return nil, fmt.Errorf("serve: route %q artifact %q: %w", name, ref, err)
	}
	fitted, err := keystone.Decode[I, O](data)
	if err != nil {
		return nil, fmt.Errorf("serve: route %q artifact %s: %w", name, shortID(id), err)
	}
	opts = append(opts, WithArtifactStore(store), withArtifactID(id))
	return Register(s, name, fitted, codec, opts...)
}

// withArtifactID seeds the initial version's artifact id (internal: the
// fitted pipeline was decoded from exactly these bytes, so re-encoding
// would only launder the id through gob nondeterminism).
func withArtifactID(id string) RouteOption {
	return func(c *routeConfig) { c.artifactID = id }
}

// DeployArtifact resolves ref in the route's bound artifact store,
// decodes it, and hot-swaps it in exactly like Deploy. It is the
// registry-backed deploy path: CI can train offline, Store the artifact,
// and flip a route to it without the serving process ever training.
func (rt *Route[I, O]) DeployArtifact(ctx context.Context, ref string) (int, error) {
	if rt.store == nil {
		return 0, fmt.Errorf("serve: route %q has no artifact store bound", rt.name)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	id, err := rt.store.Resolve(ref)
	if err != nil {
		return 0, err
	}
	data, err := rt.store.Get(id)
	if err != nil {
		return 0, err
	}
	fitted, err := keystone.Decode[I, O](data)
	if err != nil {
		return 0, fmt.Errorf("serve: route %q artifact %s: %w", rt.name, shortID(id), err)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return 0, ErrRouteClosed
	}
	if rt.canary.Load() != nil {
		return 0, ErrCanaryActive
	}
	return rt.deployLocked(fitted, "deploy artifact "+shortID(id), id), nil
}

// storeFitted encodes fitted and puts it in the bound store, returning
// its artifact id ("" with no store bound).
func (rt *Route[I, O]) storeFitted(fitted *keystone.Fitted[I, O]) (string, error) {
	if rt.store == nil {
		return "", nil
	}
	data, err := keystone.Encode(fitted)
	if err != nil {
		return "", fmt.Errorf("serve: route %q: encode artifact: %w", rt.name, err)
	}
	id, err := rt.store.Put(data)
	if err != nil {
		return "", fmt.Errorf("serve: route %q: store artifact: %w", rt.name, err)
	}
	return id, nil
}

// retagLocked moves the "<route>.live" / "<route>.previous" tags after a
// traffic swap. Tag writes are best-effort pointer maintenance — the
// swap itself already happened — so failures only bump a counter that
// the stats surface exposes.
func (rt *Route[I, O]) retagLocked(liveArt, prevArt string) {
	if rt.store == nil {
		return
	}
	if liveArt != "" {
		if err := rt.store.Tag(rt.name+".live", liveArt); err != nil {
			rt.tagErrs.Add(1)
		}
	}
	if prevArt != "" {
		if err := rt.store.Tag(rt.name+".previous", prevArt); err != nil {
			rt.tagErrs.Add(1)
		}
	}
}

// shortID abbreviates a content address for notes and error messages.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
