package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"keystoneml/keystone"
)

// TestHotSwapZeroDowntime is the acceptance test for the versioned
// hot-swap: N concurrent clients hammer a route while the test deploys a
// stream of new pipeline versions. Zero requests may fail, every
// response must come from a version that was deployed at some point, and
// the history must show each old version drained. Run under -race this
// also proves the swap machinery's locking.
func TestHotSwapZeroDowntime(t *testing.T) {
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{},
		WithBatchLimits(8, 500*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}

	const (
		clients = 8
		deploys = 10
	)
	var (
		stop     atomic.Bool
		requests atomic.Int64
		failures atomic.Int64
		badMark  atomic.Int64
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				out, err := rt.Predict(context.Background(), float64(i))
				requests.Add(1)
				if err != nil {
					failures.Add(1)
					t.Errorf("client %d request %d failed: %v", c, i, err)
					return
				}
				// Marker must be one of the deployed versions' marks
				// (1..deploys+1) and echo the input — a torn read or a
				// half-swapped artifact would break this.
				if out[0] < 1 || out[0] > deploys+1 || out[1] != float64(i) {
					badMark.Add(1)
					t.Errorf("client %d request %d: implausible output %v", c, i, out)
					return
				}
			}
		}(c)
	}

	for d := 2; d <= deploys+1; d++ {
		time.Sleep(5 * time.Millisecond) // let traffic hit the live version
		ver, err := rt.Deploy(context.Background(), fitFloatMarker(t, float64(d)))
		if err != nil {
			t.Fatalf("deploy %d: %v", d, err)
		}
		if ver != d {
			t.Fatalf("deploy %d returned version %d", d, ver)
		}
	}
	time.Sleep(5 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if failures.Load() != 0 || badMark.Load() != 0 {
		t.Fatalf("%d failures, %d bad outputs across %d requests", failures.Load(), badMark.Load(), requests.Load())
	}
	if requests.Load() == 0 {
		t.Fatal("no requests made")
	}
	if live := rt.LiveVersion(); live != deploys+1 {
		t.Fatalf("live version = %d, want %d", live, deploys+1)
	}
	// Every served request is accounted to exactly one version.
	var perVersion int64
	for _, v := range rt.versionsValue() {
		perVersion += v["served"].(int64)
	}
	if perVersion != requests.Load() {
		t.Fatalf("version history accounts %d served, want %d", perVersion, requests.Load())
	}
	t.Logf("%d clients, %d requests, %d deploys, zero failures", clients, requests.Load(), deploys)
}

// TestDeployDrainsInFlight: Deploy must not return (nor close the old
// batcher) while a request is still executing on the old version, and
// that request must complete successfully on the version that admitted
// it.
func TestDeployDrainsInFlight(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	p := keystone.Input[float64]()
	out := keystone.Then(p, keystone.NewOp("gated", func(x float64) []float64 {
		if x == 99 {
			entered <- struct{}{}
			<-gate
		}
		return []float64{1, x}
	}))
	f, err := out.Fit(context.Background(), []float64{1}, nil, keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "gated", f, JSONCodec[float64, []float64]{},
		WithBatchLimits(1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	predDone := make(chan error, 1)
	go func() {
		out, err := rt.Predict(context.Background(), 99)
		if err == nil && out[0] != 1 {
			err = fmt.Errorf("served by wrong artifact: %v", out)
		}
		predDone <- err
	}()
	<-entered // the request is now executing inside version 1

	deployDone := make(chan struct{})
	go func() {
		if _, err := rt.Deploy(context.Background(), fitFloatMarker(t, 2)); err != nil {
			t.Errorf("deploy: %v", err)
		}
		close(deployDone)
	}()

	select {
	case <-deployDone:
		t.Fatal("Deploy returned while a request was still in flight on the old version")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-predDone; err != nil {
		t.Fatalf("in-flight request failed across the swap: %v", err)
	}
	select {
	case <-deployDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Deploy never finished after the drain")
	}
	// New traffic lands on version 2.
	got, err := rt.Predict(context.Background(), 5)
	if err != nil || got[0] != 2 {
		t.Fatalf("post-swap predict = %v, %v; want mark 2", got, err)
	}
}

// TestRollbackRestoresArtifact: rollback serves the previous artifact
// under a fresh version id, and rolling back with no history fails.
func TestRollbackRestoresArtifact(t *testing.T) {
	s := NewServer()
	defer s.Close()
	rt, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Rollback(context.Background()); err == nil {
		t.Fatal("rollback with a single version should fail")
	}
	if _, err := rt.Deploy(context.Background(), fitFloatMarker(t, 2)); err != nil {
		t.Fatal(err)
	}
	if out, _ := rt.Predict(context.Background(), 0); out[0] != 2 {
		t.Fatalf("post-deploy mark = %v, want 2", out[0])
	}
	ver, err := rt.Rollback(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ver != 3 {
		t.Fatalf("rollback version = %d, want 3", ver)
	}
	if out, _ := rt.Predict(context.Background(), 0); out[0] != 1 {
		t.Fatalf("post-rollback mark = %v, want 1", out[0])
	}
}

// TestDeployByName: the package-level name-addressed Deploy resolves and
// type-checks the route.
func TestDeployByName(t *testing.T) {
	s := NewServer()
	defer s.Close()
	if _, err := Register(s, "m", fitFloatMarker(t, 1), JSONCodec[float64, []float64]{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(context.Background(), s, "m", fitFloatMarker(t, 2)); err != nil {
		t.Fatalf("Deploy by name: %v", err)
	}
	if _, err := Deploy(context.Background(), s, "missing", fitFloatMarker(t, 3)); err == nil {
		t.Error("Deploy on a missing route succeeded")
	}
	if _, err := Deploy(context.Background(), s, "m", fitTextMarker(t, 1, 0)); err == nil {
		t.Error("Deploy with mismatched record types succeeded")
	}
	var canceled context.Context
	{
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		canceled = ctx
	}
	if _, err := Deploy(canceled, s, "m", fitFloatMarker(t, 4)); !errors.Is(err, context.Canceled) {
		t.Errorf("Deploy with canceled ctx = %v, want context.Canceled", err)
	}
}
