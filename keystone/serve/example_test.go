package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"keystoneml/keystone"
	"keystoneml/keystone/serve"
)

// fitScorer fits a minimal string pipeline that emits a fixed score
// vector — a stand-in for a real trained classifier (see
// keystone.TextPipeline) that keeps the example fast and deterministic.
func fitScorer(scores []float64) *keystone.Fitted[string, []float64] {
	p := keystone.Then(keystone.Input[string](),
		keystone.NewOp(fmt.Sprintf("scorer%v", scores), func(string) []float64 { return scores }))
	fitted, err := p.Fit(context.Background(), []string{"doc"}, nil,
		keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		log.Fatal(err)
	}
	return fitted
}

// ExampleServer registers a route on the serving registry, mounts it
// over HTTP, and hot-swaps a new pipeline version with zero downtime.
func ExampleServer() {
	srv := serve.NewServer()
	defer srv.Close()

	// Any Fitted[I, O] serves: pick a codec for the wire format and,
	// optionally, an SLO to let the autotuner steer the batcher limits.
	route, err := serve.Register(srv, "sentiment",
		fitScorer([]float64{0.2, 0.8}),
		serve.TextCodec{Labels: []string{"negative", "positive"}},
		serve.WithSLO(serve.SLO{TargetP95: 20 * time.Millisecond}))
	if err != nil {
		log.Fatal(err)
	}

	// Server implements http.Handler; mount it on any listener.
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/predict", "application/json",
		strings.NewReader(`{"text":"this product is excellent"}`))
	if err != nil {
		log.Fatal(err)
	}
	var pred serve.Prediction
	json.NewDecoder(resp.Body).Decode(&pred)
	resp.Body.Close()
	fmt.Printf("label=%s class=%d\n", pred.Label, pred.Class)

	// Hot-swap a refitted pipeline behind live traffic: the route's
	// next request is served by version 2, in-flight requests drain on
	// version 1, nothing fails.
	ver, err := route.Deploy(context.Background(), fitScorer([]float64{0.9, 0.1}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("live version:", ver)

	out, err := route.Predict(context.Background(), "this product is excellent")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-swap scores:", out)

	// Output:
	// label=positive class=1
	// live version: 2
	// post-swap scores: [0.9 0.1]
}
