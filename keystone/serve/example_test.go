package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"keystoneml/keystone"
	"keystoneml/keystone/serve"
)

// fitScorer fits a minimal string pipeline that emits a fixed score
// vector — a stand-in for a real trained classifier (see
// keystone.TextPipeline) that keeps the example fast and deterministic.
func fitScorer(scores []float64) *keystone.Fitted[string, []float64] {
	p := keystone.Then(keystone.Input[string](),
		keystone.NewOp(fmt.Sprintf("scorer%v", scores), func(string) []float64 { return scores }))
	fitted, err := p.Fit(context.Background(), []string{"doc"}, nil,
		keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		log.Fatal(err)
	}
	return fitted
}

// ExampleServer registers a route on the serving registry, mounts it
// over HTTP, and hot-swaps a new pipeline version with zero downtime.
func ExampleServer() {
	srv := serve.NewServer()
	defer srv.Close()

	// Any Fitted[I, O] serves: pick a codec for the wire format and,
	// optionally, an SLO to let the autotuner steer the batcher limits.
	route, err := serve.Register(srv, "sentiment",
		fitScorer([]float64{0.2, 0.8}),
		serve.TextCodec{Labels: []string{"negative", "positive"}},
		serve.WithSLO(serve.SLO{TargetP95: 20 * time.Millisecond}))
	if err != nil {
		log.Fatal(err)
	}

	// Server implements http.Handler; mount it on any listener.
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/predict", "application/json",
		strings.NewReader(`{"text":"this product is excellent"}`))
	if err != nil {
		log.Fatal(err)
	}
	var pred serve.Prediction
	json.NewDecoder(resp.Body).Decode(&pred)
	resp.Body.Close()
	fmt.Printf("label=%s class=%d\n", pred.Label, pred.Class)

	// Hot-swap a refitted pipeline behind live traffic: the route's
	// next request is served by version 2, in-flight requests drain on
	// version 1, nothing fails.
	ver, err := route.Deploy(context.Background(), fitScorer([]float64{0.9, 0.1}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("live version:", ver)

	out, err := route.Predict(context.Background(), "this product is excellent")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-swap scores:", out)

	// Output:
	// label=positive class=1
	// live version: 2
	// post-swap scores: [0.9 0.1]
}

// ExampleWithSLO attaches a latency objective to a route: the autotuner
// steers the batcher's (maxBatch, maxDelay) toward the p95 target, and
// the throughput floor keeps it from trading the serving rate away to
// get there.
func ExampleWithSLO() {
	srv := serve.NewServer()
	defer srv.Close()

	route, err := serve.Register(srv, "sentiment",
		fitScorer([]float64{0.2, 0.8}),
		serve.TextCodec{Labels: []string{"negative", "positive"}},
		serve.WithBatchLimits(32, 5*time.Millisecond), // the tuner's starting point
		serve.WithSLO(serve.SLO{
			TargetP95:       20 * time.Millisecond,
			ThroughputFloor: 500, // records/sec the tuner must preserve
		}))
	if err != nil {
		log.Fatal(err)
	}
	out, err := route.Predict(context.Background(), "great product")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scores:", out)
	// Output: scores: [0.2 0.8]
}

// ExampleRoute_Canary stages a candidate version on 10% of live
// traffic, watches the per-version comparison, and promotes it. The
// deterministic splitter sends exactly every 10th request to the
// candidate; Abort instead of Promote would drain and discard it with
// the same zero-loss guarantee.
func ExampleRoute_Canary() {
	srv := serve.NewServer()
	defer srv.Close()
	route, err := serve.Register(srv, "sentiment",
		fitScorer([]float64{0.2, 0.8}),
		serve.TextCodec{Labels: []string{"negative", "positive"}})
	if err != nil {
		log.Fatal(err)
	}

	candidate := fitScorer([]float64{0.1, 0.9})
	ver, err := route.Canary(context.Background(), candidate, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("candidate version:", ver)

	for i := 0; i < 20; i++ {
		if _, err := route.Predict(context.Background(), "doc"); err != nil {
			log.Fatal(err)
		}
	}
	stats, _ := route.CanaryStats()
	fmt.Printf("primary served %d, candidate served %d\n", stats.PrimaryServed, stats.CandidateServed)

	promoted, err := route.Promote(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("promoted version:", promoted)
	// Output:
	// candidate version: 2
	// primary served 18, candidate served 2
	// promoted version: 2
}

// ExampleRoute_Shadow mirrors live traffic to a candidate whose
// responses are discarded: the primary keeps answering every request
// while the candidate's latency and error counters fill with real
// traffic — a zero-risk rehearsal before a canary or deploy.
func ExampleRoute_Shadow() {
	srv := serve.NewServer()
	defer srv.Close()
	route, err := serve.Register(srv, "sentiment",
		fitScorer([]float64{0.2, 0.8}),
		serve.TextCodec{Labels: []string{"negative", "positive"}})
	if err != nil {
		log.Fatal(err)
	}

	if _, err := route.Shadow(context.Background(), fitScorer([]float64{0.5, 0.5})); err != nil {
		log.Fatal(err)
	}
	const reqs = 10
	for i := 0; i < reqs; i++ {
		out, err := route.Predict(context.Background(), "doc")
		if err != nil || out[1] != 0.8 {
			log.Fatalf("response %v, %v not from the primary", out, err)
		}
	}
	// Mirrors run asynchronously; wait for them to finish observing.
	for {
		stats, _ := route.CanaryStats()
		if stats.CandidateServed+stats.ShadowDropped+stats.CandidateErrors >= reqs {
			fmt.Printf("mirrored %d, dropped %d, primary answered all %d\n",
				stats.CandidateServed, stats.ShadowDropped, stats.PrimaryServed)
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := route.Abort(context.Background()); err != nil {
		log.Fatal(err)
	}
	// Output: mirrored 10, dropped 0, primary answered all 10
}
