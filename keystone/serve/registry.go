package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"keystoneml/keystone"
)

const (
	defaultRouteTimeout = 5 * time.Second
	// maxRequestBody bounds one request body read (predict or batch).
	maxRequestBody = 32 << 20
)

var routeNameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]*$`)

// RouteOption configures a route at Register time.
type RouteOption func(*routeConfig)

type routeConfig struct {
	maxBatch   int
	maxDelay   time.Duration
	timeout    time.Duration
	slo        SLO
	admission  Admission
	store      ArtifactStore
	artifactID string // initial version's known content address (RegisterArtifact)
}

// WithBatchLimits sets the route's initial micro-batching limits
// (non-positive values select the batcher defaults: 32 records, 2ms).
// Under an SLO these are just the autotuner's starting point.
func WithBatchLimits(maxBatch int, maxDelay time.Duration) RouteOption {
	return func(c *routeConfig) { c.maxBatch, c.maxDelay = maxBatch, maxDelay }
}

// WithTimeout bounds each HTTP request's prediction (default 5s).
func WithTimeout(d time.Duration) RouteOption {
	return func(c *routeConfig) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithSLO attaches a latency objective: the route runs an autotuner that
// steers (maxBatch, maxDelay) toward the target p95 online.
func WithSLO(slo SLO) RouteOption {
	return func(c *routeConfig) { c.slo = slo }
}

// Route is a named serving endpoint hosting successive versions of one
// fitted pipeline. It is created by Register, serves over the Server's
// HTTP surface (and programmatically via Predict/PredictBatch), and is
// hot-swapped with Deploy/Rollback. Type-changing registration is a
// package-level generic for the same reason keystone.Then is.
type Route[I, O any] struct {
	server  *Server
	name    string
	codec   Codec[I, O]
	timeout time.Duration

	// refit, when set, backs the POST /routes/{name}/deploy endpoint:
	// it produces a freshly fitted artifact which is then deployed.
	refitMu sync.RWMutex
	refit   func(context.Context) (*keystone.Fitted[I, O], error)

	// tuner state; tunedBatch/tunedDelay carry the current limits across
	// deploys so a new version's batcher starts where tuning left off.
	tuner      *Tuner
	tunerStop  chan struct{}
	tunedBatch atomic.Int64
	tunedDelay atomic.Int64

	mu         sync.Mutex // serializes Deploy / Rollback / Canary / Shadow / Promote / Abort / closeRoute
	closed     bool
	prevLiveID int // last version that held live traffic before cur (0 = none); guarded by mu
	cur        atomic.Pointer[version[I, O]]

	// canary holds the staged canary/shadow candidate (nil = none); the
	// request path reads it lock-free.
	canary atomic.Pointer[canaryState[I, O]]

	// adm is the route's admission control (a nil admitter admits
	// everything). It is an atomic pointer so SetAdmission — the
	// dist-router rollout push — can swap the caps under live traffic.
	adm atomic.Pointer[admitter]

	// store is the bound artifact registry (nil = none); set once at
	// Register time and immutable after, so the request path and stats
	// read it without locks. tagErrs counts failed best-effort tag moves.
	store   ArtifactStore
	tagErrs atomic.Int64

	histMu sync.RWMutex
	vers   []*version[I, O]

	served atomic.Int64 // records served across all versions and paths
}

// Register adds a named route serving fitted through codec and returns
// its typed handle. The first registered route also answers the bare
// /predict and /predict/batch paths (back-compat with the single-route
// server). Names are lowercase [a-z0-9_-]+ and must be unique.
func Register[I, O any](s *Server, name string, fitted *keystone.Fitted[I, O], codec Codec[I, O], opts ...RouteOption) (*Route[I, O], error) {
	if !routeNameRE.MatchString(name) {
		return nil, fmt.Errorf("serve: invalid route name %q (want lowercase [a-z0-9_-]+)", name)
	}
	if fitted == nil {
		return nil, fmt.Errorf("serve: route %q registered with nil fitted pipeline", name)
	}
	if codec == nil {
		return nil, fmt.Errorf("serve: route %q registered with nil codec", name)
	}
	cfg := routeConfig{timeout: defaultRouteTimeout}
	for _, opt := range opts {
		opt(&cfg)
	}
	rt := &Route[I, O]{
		server:  s,
		name:    name,
		codec:   codec,
		timeout: cfg.timeout,
		store:   cfg.store,
	}
	rt.adm.Store(newAdmitter(cfg.admission))
	batch, delay := cfg.maxBatch, cfg.maxDelay
	if cfg.slo.TargetP95 > 0 {
		rt.tuner = NewTuner(cfg.slo)
		batch, delay = rt.tuner.clampLimits(orDefault(batch, 32), orDefaultDur(delay, 2*time.Millisecond))
	}
	rt.tunedBatch.Store(int64(batch))
	rt.tunedDelay.Store(int64(delay))
	if rt.tuner != nil {
		// Created before s.add publishes rt: a concurrent Server.Close
		// may reach closeRoute as soon as the route is visible.
		rt.tunerStop = make(chan struct{})
	}

	// Deploy before publishing in the registry so the route is never
	// visible over HTTP without a live version. With an artifact store
	// bound, the initial version is made durable first (RegisterArtifact
	// already knows its id; a trained pipeline is encoded and stored).
	art := cfg.artifactID
	if rt.store != nil && art == "" {
		var err error
		if art, err = rt.storeFitted(fitted); err != nil {
			return nil, err
		}
	}
	rt.mu.Lock()
	rt.deployLocked(fitted, "initial", art)
	rt.mu.Unlock()
	if err := s.add(name, rt); err != nil {
		rt.closeRoute()
		return nil, err
	}
	if rt.tuner != nil {
		// If Close won the race since add, tunerStop is already closed
		// and the loop exits on its first select.
		go rt.tuneLoop()
	}
	return rt, nil
}

func orDefault(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

func orDefaultDur(v, d time.Duration) time.Duration {
	if v <= 0 {
		return d
	}
	return v
}

// Name returns the route's registered name.
func (rt *Route[I, O]) Name() string { return rt.name }

// LiveVersion returns the id of the version currently serving (0 after
// close).
func (rt *Route[I, O]) LiveVersion() int {
	if v := rt.cur.Load(); v != nil {
		return v.id
	}
	return 0
}

// LiveArtifact returns the artifact reference of the version currently
// serving ("" when the route has no artifact store or no live version) —
// the registry entry tune.DeployWinner reports after a deploy.
func (rt *Route[I, O]) LiveArtifact() string {
	if v := rt.cur.Load(); v != nil {
		return v.artifact
	}
	return ""
}

// SetRefit installs the trainer backing POST /routes/{name}/deploy: the
// endpoint calls fn and deploys its result, making hot-swap reachable
// over HTTP. fn runs under the request's context, so a disconnecting
// client cancels the refit via the context-aware Fit.
func (rt *Route[I, O]) SetRefit(fn func(context.Context) (*keystone.Fitted[I, O], error)) {
	rt.refitMu.Lock()
	rt.refit = fn
	rt.refitMu.Unlock()
}

// Predict runs one record through the live version, micro-batched with
// concurrent callers.
func (rt *Route[I, O]) Predict(ctx context.Context, rec I) (O, error) {
	out, _, err := rt.predict(ctx, rec)
	return out, err
}

// PredictBatch runs a caller-assembled batch through the live version's
// direct batch path.
func (rt *Route[I, O]) PredictBatch(ctx context.Context, recs []I) ([]O, error) {
	outs, _, err := rt.predictBatch(ctx, recs)
	return outs, err
}

// limits returns the batcher limits a new version should start with.
func (rt *Route[I, O]) limits() (int, time.Duration) {
	return int(rt.tunedBatch.Load()), time.Duration(rt.tunedDelay.Load())
}

// tuneLoop applies the autotuner to the live version's batcher every
// Interval until the route closes.
func (rt *Route[I, O]) tuneLoop() {
	ticker := time.NewTicker(rt.tuner.Config().Interval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.tunerStop:
			return
		case <-ticker.C:
			v := rt.cur.Load()
			if v == nil {
				return
			}
			curB, curD := v.batcher.Limits()
			newB, newD := rt.tuner.Step(v.batcher.Latency(), curB, curD)
			if newB != curB || newD != curD {
				v.batcher.SetLimits(newB, newD)
				rt.tunedBatch.Store(int64(newB))
				rt.tunedDelay.Store(int64(newD))
				// A staged candidate must track the same limits, or the
				// canary/shadow p95 comparison would measure assembly-window
				// skew instead of the artifacts. (SetLimits on a batcher a
				// concurrent Abort just closed is harmless — atomics only.)
				if st := rt.canary.Load(); st != nil {
					st.cand.batcher.SetLimits(newB, newD)
				}
			}
		}
	}
}

// --- HTTP surface (invoked by Server.ServeHTTP) ---

func (rt *Route[I, O]) routeName() string { return rt.name }

func (rt *Route[I, O]) handlePredict(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	rec, err := rt.codec.DecodeRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.timeout)
	defer cancel()
	out, ver, err := rt.predict(ctx, rec)
	if err != nil {
		rt.predictError(w, err)
		return
	}
	w.Header().Set("X-Keystone-Version", fmt.Sprint(ver))
	writeJSON(w, rt.codec.Response(out))
}

func (rt *Route[I, O]) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	recs, err := rt.codec.DecodeBatch(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.timeout)
	defer cancel()
	outs, ver, err := rt.predictBatch(ctx, recs)
	if err != nil {
		rt.predictError(w, err)
		return
	}
	results := make([]any, len(outs))
	for i, out := range outs {
		results[i] = rt.codec.Response(out)
	}
	w.Header().Set("X-Keystone-Version", fmt.Sprint(ver))
	writeJSON(w, map[string]any{"results": results})
}

// predictError renders a failed prediction, attaching the Retry-After
// hint when admission control shed the request.
func (rt *Route[I, O]) predictError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrOverloaded) {
		secs := int64((rt.adm.Load().retryAfter() + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	httpError(w, statusOf(err), err.Error())
}

func (rt *Route[I, O]) handleDeploy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	// {"artifact": ref} selects the registry-backed deploy path: resolve
	// and swap in a stored artifact instead of refitting.
	var req struct {
		Artifact string `json:"artifact"`
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
	}
	if req.Artifact != "" {
		ver, err := rt.DeployArtifact(r.Context(), req.Artifact)
		if err != nil {
			httpError(w, stageStatusOf(err), err.Error())
			return
		}
		writeJSON(w, map[string]any{"route": rt.name, "version": ver, "artifact": req.Artifact})
		return
	}
	rt.refitMu.RLock()
	refit := rt.refit
	rt.refitMu.RUnlock()
	if refit == nil {
		httpError(w, http.StatusNotImplemented, fmt.Sprintf("route %q has no refitter configured", rt.name))
		return
	}
	fitted, err := refit(r.Context())
	if err != nil {
		httpError(w, statusOf(err), "refit: "+err.Error())
		return
	}
	ver, err := rt.Deploy(r.Context(), fitted)
	if err != nil {
		httpError(w, stageStatusOf(err), err.Error())
		return
	}
	writeJSON(w, map[string]any{"route": rt.name, "version": ver})
}

func (rt *Route[I, O]) handleRollback(w http.ResponseWriter, r *http.Request) {
	ver, err := rt.Rollback(r.Context())
	if err != nil {
		// No-previous-version is the caller's conflict; closed routes
		// and dead request contexts keep their usual statuses.
		code := http.StatusConflict
		if errors.Is(err, ErrRouteClosed) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = statusOf(err)
		}
		httpError(w, code, err.Error())
		return
	}
	writeJSON(w, map[string]any{"route": rt.name, "version": ver})
}

func (rt *Route[I, O]) versionsValue() []map[string]any {
	live := 0
	if v := rt.cur.Load(); v != nil {
		live = v.id
	}
	rt.histMu.RLock()
	defer rt.histMu.RUnlock()
	out := make([]map[string]any, len(rt.vers))
	for i, v := range rt.vers {
		out[i] = map[string]any{
			"id":          v.id,
			"note":        v.note,
			"deployed_at": v.deployed.UTC().Format(time.RFC3339Nano),
			"live":        v.id == live,
			"served":      v.served.Load(),
			"errors":      v.errs.Load(),
		}
		if v.artifact != "" {
			out[i]["artifact"] = v.artifact
		}
	}
	return out
}

func (rt *Route[I, O]) statsValue() map[string]any {
	rt.histMu.RLock()
	versions := len(rt.vers)
	rt.histMu.RUnlock()
	out := map[string]any{
		"route":        rt.name,
		"versions":     versions,
		"live_version": rt.LiveVersion(),
		"served":       rt.served.Load(),
		"autotune":     rt.tuner != nil,
	}
	v := rt.cur.Load()
	if v == nil {
		return out
	}
	st := v.batcher.Stats()
	out["batches"] = st.Batches
	out["records"] = st.Records
	out["largest_batch"] = st.LargestBatch
	out["in_flight"] = st.InFlight
	b, d := v.batcher.Limits()
	out["max_batch"] = b
	out["max_delay_ms"] = durMS(d)
	snap := v.batcher.Latency()
	out["latency_p50_ms"] = durMS(snap.P50)
	out["latency_p95_ms"] = durMS(snap.P95)
	out["window_samples"] = snap.Samples
	out["mean_occupancy"] = snap.MeanOccupancy
	out["throughput_rps"] = snap.Throughput
	out["queue_depth"] = v.batcher.QueueDepth()
	if rt.tuner != nil {
		cfg := rt.tuner.Config()
		out["slo_target_p95_ms"] = durMS(cfg.TargetP95)
		if cfg.ThroughputFloor > 0 {
			out["slo_throughput_floor_rps"] = cfg.ThroughputFloor
		}
	}
	if rt.store != nil {
		out["registry"] = map[string]any{
			"bound":      true,
			"tag_errors": rt.tagErrs.Load(),
		}
		if v.artifact != "" {
			out["live_artifact"] = v.artifact
		}
	}
	if adm := rt.adm.Load(); adm != nil {
		out["admission"] = map[string]any{
			"max_in_flight": adm.cfg.MaxInFlight,
			"max_queue":     adm.cfg.MaxQueue,
			"in_flight":     adm.InFlight(),
			"shed":          adm.Shed(),
		}
	}
	if cs, ok := rt.CanaryStats(); ok {
		out["canary"] = canaryStatsValue(cs)
	}
	return out
}

// Shed reports how many requests admission control has turned away on
// this route (0 without admission control).
func (rt *Route[I, O]) Shed() int64 { return rt.adm.Load().Shed() }

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return nil, false
	}
	return body, true
}
