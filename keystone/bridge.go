package keystone

import "keystoneml/internal/core"

// This file is the narrow seam between the public facade and the
// keystone/dist coordinator, which re-implements Fit's execution step
// across worker processes but reuses everything else (graph building,
// optimizer, artifact codec) from this package. Ordinary consumers never
// need these: Fit/Transform/Save/Load are the supported surface.

// EngineGraph exposes the pipeline's underlying DAG and output node for
// engine-level executors such as keystone/dist. The returned graph is
// the live graph (not a clone); callers must Clone before mutating.
func (p *Pipeline[I, O]) EngineGraph() (*core.Graph, *core.Node) { return p.g, p.out }

// NewEngineFitted wraps an engine-level fitted pipeline as a public
// Fitted[I, O], the inverse of what Fit does after executing its plan.
// The caller asserts the type parameters match the graph's record types
// (keystone/dist derives them from the Pipeline it was handed, so the
// assertion holds by construction).
func NewEngineFitted[I, O any](inner *core.Fitted, info FitInfo) *Fitted[I, O] {
	return &Fitted[I, O]{inner: inner, info: info}
}

// Engine exposes the engine-level fitted pipeline backing f — the object
// keystone.Encode serializes — for engine-level callers pairing public
// and dist execution paths.
func (f *Fitted[I, O]) Engine() *core.Fitted { return f.inner }
