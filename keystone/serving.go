package keystone

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBatcherClosed is returned by Predict after Close.
var ErrBatcherClosed = errors.New("keystone: batcher closed")

const (
	defaultMaxBatch = 32
	defaultMaxDelay = 2 * time.Millisecond
	// batcherQueueDepth bounds requests queued ahead of batch assembly;
	// beyond it Predict callers block (back-pressure) until the loop
	// drains or their context fires.
	batcherQueueDepth = 256
	// flushOverlap bounds how many batches may execute in the pipeline
	// simultaneously. With 1 the old head-of-line behaviour returns: a
	// slow batch blocks the next from forming. With 2+ the assembly loop
	// keeps collecting while earlier batches execute.
	flushOverlap = 2
	// latWindowSize is the ring capacity of the latency/occupancy window
	// behind Latency(); sized so p95 has resolution without unbounded
	// memory.
	latWindowSize = 256
)

// Batcher coalesces concurrent single-record Predict calls into batched
// TransformBatch invocations: a batch is flushed when it reaches maxBatch
// records or maxDelay after its first record, whichever comes first. This
// is the serving-side micro-batching pattern — callers keep a
// one-record-at-a-time API while the pipeline sees amortized batches.
//
// Flushes overlap: up to a small bound of batches execute in the pipeline
// concurrently, so a slow batch does not head-of-line-block the next batch
// from forming. Limits are dynamic — SetLimits retargets (maxBatch,
// maxDelay) while the batcher runs, which is how the serve package's
// SLO-driven autotuner steers latency — and Latency() exposes a sliding
// window of observed request latencies and batch occupancy for exactly
// that feedback loop.
//
// A Batcher is safe for any number of concurrent Predict callers.
type Batcher[I, O any] struct {
	fitted *Fitted[I, O]

	maxBatch atomic.Int64
	maxDelay atomic.Int64 // nanoseconds

	reqs       chan batchReq[I, O]
	quit       chan struct{}
	flushSlots chan struct{}
	wg         sync.WaitGroup

	batches  atomic.Int64
	records  atomic.Int64
	failed   atomic.Int64
	largest  atomic.Int64
	inflight atomic.Int64
	// assembling counts requests pulled off reqs into the batch the loop
	// is currently forming — invisible to len(reqs) but still queued
	// latency from the caller's perspective.
	assembling atomic.Int64

	window latWindow
}

type batchReq[I, O any] struct {
	ctx  context.Context
	rec  I
	enq  time.Time
	resp chan batchResp[O]
}

type batchResp[O any] struct {
	out O
	err error
}

// NewBatcher wraps a fitted pipeline in a micro-batching front. maxBatch
// <= 0 defaults to 32; maxDelay <= 0 defaults to 2ms.
func NewBatcher[I, O any](f *Fitted[I, O], maxBatch int, maxDelay time.Duration) *Batcher[I, O] {
	b := &Batcher[I, O]{
		fitted:     f,
		reqs:       make(chan batchReq[I, O], batcherQueueDepth),
		quit:       make(chan struct{}),
		flushSlots: make(chan struct{}, flushOverlap),
	}
	b.SetLimits(maxBatch, maxDelay)
	b.wg.Add(1)
	go b.loop()
	return b
}

// SetLimits retargets the batch assembly limits; the next batch to form
// observes them. Non-positive values restore the defaults (32, 2ms).
// Safe to call concurrently with serving traffic.
func (b *Batcher[I, O]) SetLimits(maxBatch int, maxDelay time.Duration) {
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	if maxDelay <= 0 {
		maxDelay = defaultMaxDelay
	}
	b.maxBatch.Store(int64(maxBatch))
	b.maxDelay.Store(int64(maxDelay))
}

// Limits returns the current (maxBatch, maxDelay) targets.
func (b *Batcher[I, O]) Limits() (int, time.Duration) {
	return int(b.maxBatch.Load()), time.Duration(b.maxDelay.Load())
}

// QueueDepth reports how many requests are queued ahead of batch
// assembly right now, including records already pulled into the batch
// being assembled (they have left the channel but are still waiting).
// It is the signal a high-watermark load shedder reads: a persistently
// deep queue means arrivals outpace the pipeline, and every queued
// request is latency some caller is already paying.
func (b *Batcher[I, O]) QueueDepth() int {
	return len(b.reqs) + int(b.assembling.Load())
}

// Predict runs one record through the pipeline, transparently sharing a
// batch with concurrent callers. It honors ctx while queued; once its
// batch starts executing the result is computed regardless (and discarded
// if the caller has gone).
func (b *Batcher[I, O]) Predict(ctx context.Context, rec I) (O, error) {
	var zero O
	if ctx == nil {
		ctx = context.Background()
	}
	req := batchReq[I, O]{ctx: ctx, rec: rec, enq: time.Now(), resp: make(chan batchResp[O], 1)}
	select {
	case b.reqs <- req:
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-b.quit:
		return zero, ErrBatcherClosed
	}
	select {
	case r := <-req.resp:
		return r.out, r.err
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-b.quit:
		return zero, ErrBatcherClosed
	}
}

// Close stops the batch loop and waits for in-flight flushes to finish
// delivering. Requests still queued fail with ErrBatcherClosed.
func (b *Batcher[I, O]) Close() {
	close(b.quit)
	b.wg.Wait()
}

// BatcherStats is a point-in-time snapshot of batching behaviour.
type BatcherStats struct {
	Batches      int64 // flushed batches
	Records      int64 // records served through batches
	Failed       int64 // records whose batch execution returned an error
	LargestBatch int64 // largest batch observed
	InFlight     int64 // requests currently queued or executing
}

// Stats snapshots the batcher counters.
func (b *Batcher[I, O]) Stats() BatcherStats {
	return BatcherStats{
		Batches:      b.batches.Load(),
		Records:      b.records.Load(),
		Failed:       b.failed.Load(),
		LargestBatch: b.largest.Load(),
		InFlight:     b.inflight.Load(),
	}
}

// LatencySnapshot summarizes the sliding window of recent serving
// behaviour: request latencies (enqueue to response) and how full batches
// were relative to the maxBatch limit when they flushed. The serve
// package's autotuner feeds on this.
type LatencySnapshot struct {
	Samples       int           // latency observations in the window
	P50           time.Duration // median request latency over the window
	P95           time.Duration // 95th-percentile request latency
	Batches       int           // occupancy observations in the window
	MeanOccupancy float64       // mean batch fill fraction vs maxBatch
	// Throughput is the observed serving rate in records/sec over the
	// window's wall-clock span (0 until two observations exist). The
	// multi-objective tuner reads it to enforce a throughput floor.
	Throughput float64
}

// Latency computes quantiles over the sliding window. O(window log window).
func (b *Batcher[I, O]) Latency() LatencySnapshot {
	return b.window.snapshot()
}

func (b *Batcher[I, O]) loop() {
	defer b.wg.Done()
	for {
		select {
		case first := <-b.reqs:
			maxBatch, maxDelay := b.Limits()
			batch := make([]batchReq[I, O], 1, maxBatch)
			batch[0] = first
			b.assembling.Add(1)
			timer := time.NewTimer(maxDelay)
		fill:
			for len(batch) < maxBatch {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
					b.assembling.Add(1)
				case <-timer.C:
					break fill
				case <-b.quit:
					timer.Stop()
					b.assembling.Add(-int64(len(batch)))
					b.fail(batch)
					return
				}
			}
			timer.Stop()
			// Overlapping flush: take an execution slot (bounding
			// pipeline concurrency) and run the batch in the
			// background so assembly of the next batch starts
			// immediately. The batch stays counted as assembling until
			// handed off — a slot wait is still queued latency.
			select {
			case b.flushSlots <- struct{}{}:
			case <-b.quit:
				b.assembling.Add(-int64(len(batch)))
				b.fail(batch)
				return
			}
			b.assembling.Add(-int64(len(batch)))
			b.wg.Add(1)
			go func(batch []batchReq[I, O], capacity int) {
				defer b.wg.Done()
				defer func() { <-b.flushSlots }()
				b.flush(batch, capacity)
			}(batch, maxBatch)
		case <-b.quit:
			return
		}
	}
}

// flush executes one batch and fans results back to the waiters.
// Requests whose callers abandoned ship while queued are dropped before
// the pipeline runs, and the batch executes under a context that stays
// live only as long as at least one caller does — if every remaining
// caller disconnects mid-execution, the pipeline work is canceled
// instead of burning to completion for nobody. capacity is the maxBatch
// limit the batch was assembled under, for the occupancy observation.
func (b *Batcher[I, O]) flush(batch []batchReq[I, O], capacity int) {
	live := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() == nil {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return
	}
	b.inflight.Add(int64(len(live)))
	defer b.inflight.Add(-int64(len(live)))
	recs := make([]I, len(live))
	for i, r := range live {
		recs[i] = r.rec
	}
	ctx, cancel := b.batchContext(live)
	outs, err := b.fitted.TransformBatch(ctx, recs)
	cancel()
	b.batches.Add(1)
	b.records.Add(int64(len(live)))
	for n := int64(len(live)); ; {
		cur := b.largest.Load()
		if n <= cur || b.largest.CompareAndSwap(cur, n) {
			break
		}
	}
	b.window.observeOccupancy(float64(len(live)) / float64(capacity))
	now := time.Now()
	if err != nil {
		b.failed.Add(int64(len(live)))
	}
	for i, r := range live {
		// Latency is observed on success and failure alike: an erroring
		// batch still took wall-clock time the SLO tuner must see, or a
		// run of failures starves the window and tuning stops adapting.
		b.window.observeLatency(now.Sub(r.enq))
		if err != nil {
			r.resp <- batchResp[O]{err: err}
			continue
		}
		r.resp <- batchResp[O]{out: outs[i]}
	}
}

// batchContext derives the context a batch executes under from the live
// requests' contexts: it cancels once every watched caller has gone. A
// request with a non-cancelable context (Done() == nil) pins the batch
// alive, so no watchers are spawned at all in that common case.
func (b *Batcher[I, O]) batchContext(live []batchReq[I, O]) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	watched := 0
	for _, r := range live {
		if r.ctx.Done() != nil {
			watched++
		}
	}
	if watched < len(live) {
		return ctx, cancel
	}
	remaining := new(atomic.Int64)
	remaining.Store(int64(watched))
	for _, r := range live {
		go func(done <-chan struct{}) {
			select {
			case <-done:
				if remaining.Add(-1) == 0 {
					cancel()
				}
			case <-ctx.Done():
				// Batch finished (or fully abandoned); watcher exits.
			}
		}(r.ctx.Done())
	}
	return ctx, cancel
}

// fail rejects a batch that could not be executed because the batcher is
// shutting down.
func (b *Batcher[I, O]) fail(batch []batchReq[I, O]) {
	for _, r := range batch {
		r.resp <- batchResp[O]{err: ErrBatcherClosed}
	}
}

// latWindow is a mutex-guarded pair of fixed rings: per-request latencies
// and per-batch occupancy fractions. Overwrites oldest first.
type latWindow struct {
	mu    sync.Mutex
	lats  [latWindowSize]time.Duration
	whens [latWindowSize]time.Time // observation times, for Throughput
	occs  [latWindowSize]float64
	nLat  int // total latency observations ever
	nOcc  int // total occupancy observations ever
}

func (w *latWindow) observeLatency(d time.Duration) {
	now := time.Now()
	w.mu.Lock()
	w.lats[w.nLat%latWindowSize] = d
	w.whens[w.nLat%latWindowSize] = now
	w.nLat++
	w.mu.Unlock()
}

func (w *latWindow) observeOccupancy(f float64) {
	w.mu.Lock()
	w.occs[w.nOcc%latWindowSize] = f
	w.nOcc++
	w.mu.Unlock()
}

func (w *latWindow) snapshot() LatencySnapshot {
	w.mu.Lock()
	nl := min(w.nLat, latWindowSize)
	lats := make([]time.Duration, nl)
	copy(lats, w.lats[:nl])
	no := min(w.nOcc, latWindowSize)
	var occSum float64
	for _, f := range w.occs[:no] {
		occSum += f
	}
	var span time.Duration
	if nl >= 2 {
		// Newest observation is slot (nLat-1)%size; the oldest retained
		// is slot nLat%size once the ring has wrapped, else slot 0.
		newest := w.whens[(w.nLat-1)%latWindowSize]
		oldest := w.whens[0]
		if w.nLat > latWindowSize {
			oldest = w.whens[w.nLat%latWindowSize]
		}
		span = newest.Sub(oldest)
	}
	w.mu.Unlock()

	snap := LatencySnapshot{Samples: nl, Batches: no}
	if no > 0 {
		snap.MeanOccupancy = occSum / float64(no)
	}
	if nl > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		snap.P50 = lats[nl/2]
		snap.P95 = lats[(nl*95)/100]
	}
	if span > 0 {
		snap.Throughput = float64(nl-1) / span.Seconds()
	}
	return snap
}
