package keystone

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBatcherClosed is returned by Predict after Close.
var ErrBatcherClosed = errors.New("keystone: batcher closed")

// Batcher coalesces concurrent single-record Predict calls into batched
// TransformBatch invocations: a batch is flushed when it reaches MaxBatch
// records or MaxDelay after its first record, whichever comes first. This
// is the serving-side micro-batching pattern — callers keep a
// one-record-at-a-time API while the pipeline sees amortized batches.
//
// A Batcher is safe for any number of concurrent Predict callers.
type Batcher[I, O any] struct {
	fitted   *Fitted[I, O]
	maxBatch int
	maxDelay time.Duration

	reqs chan batchReq[I, O]
	quit chan struct{}
	wg   sync.WaitGroup

	batches  atomic.Int64
	records  atomic.Int64
	largest  atomic.Int64
	inflight atomic.Int64
}

type batchReq[I, O any] struct {
	ctx  context.Context
	rec  I
	resp chan batchResp[O]
}

type batchResp[O any] struct {
	out O
	err error
}

// NewBatcher wraps a fitted pipeline in a micro-batching front. maxBatch
// <= 0 defaults to 32; maxDelay <= 0 defaults to 2ms.
func NewBatcher[I, O any](f *Fitted[I, O], maxBatch int, maxDelay time.Duration) *Batcher[I, O] {
	if maxBatch <= 0 {
		maxBatch = 32
	}
	if maxDelay <= 0 {
		maxDelay = 2 * time.Millisecond
	}
	b := &Batcher[I, O]{
		fitted:   f,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		reqs:     make(chan batchReq[I, O], maxBatch),
		quit:     make(chan struct{}),
	}
	b.wg.Add(1)
	go b.loop()
	return b
}

// Predict runs one record through the pipeline, transparently sharing a
// batch with concurrent callers. It honors ctx while queued; once its
// batch starts executing the result is computed regardless (and discarded
// if the caller has gone).
func (b *Batcher[I, O]) Predict(ctx context.Context, rec I) (O, error) {
	var zero O
	if ctx == nil {
		ctx = context.Background()
	}
	req := batchReq[I, O]{ctx: ctx, rec: rec, resp: make(chan batchResp[O], 1)}
	select {
	case b.reqs <- req:
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-b.quit:
		return zero, ErrBatcherClosed
	}
	select {
	case r := <-req.resp:
		return r.out, r.err
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-b.quit:
		return zero, ErrBatcherClosed
	}
}

// Close stops the batch loop. Queued requests fail with ErrBatcherClosed;
// Close waits for the loop to exit.
func (b *Batcher[I, O]) Close() {
	close(b.quit)
	b.wg.Wait()
}

// BatcherStats is a point-in-time snapshot of batching behaviour.
type BatcherStats struct {
	Batches      int64 // flushed batches
	Records      int64 // records served through batches
	LargestBatch int64 // largest batch observed
	InFlight     int64 // requests currently queued or executing
}

// Stats snapshots the batcher counters.
func (b *Batcher[I, O]) Stats() BatcherStats {
	return BatcherStats{
		Batches:      b.batches.Load(),
		Records:      b.records.Load(),
		LargestBatch: b.largest.Load(),
		InFlight:     b.inflight.Load(),
	}
}

func (b *Batcher[I, O]) loop() {
	defer b.wg.Done()
	for {
		select {
		case first := <-b.reqs:
			batch := make([]batchReq[I, O], 1, b.maxBatch)
			batch[0] = first
			timer := time.NewTimer(b.maxDelay)
		fill:
			for len(batch) < b.maxBatch {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
				case <-timer.C:
					break fill
				case <-b.quit:
					timer.Stop()
					b.fail(batch)
					return
				}
			}
			timer.Stop()
			b.flush(batch)
		case <-b.quit:
			return
		}
	}
}

// flush executes one batch and fans results back to the waiters.
// Requests whose callers abandoned ship while queued are dropped before
// the pipeline runs.
func (b *Batcher[I, O]) flush(batch []batchReq[I, O]) {
	live := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() == nil {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return
	}
	b.inflight.Add(int64(len(live)))
	defer b.inflight.Add(-int64(len(live)))
	recs := make([]I, len(live))
	for i, r := range live {
		recs[i] = r.rec
	}
	outs, err := b.fitted.TransformBatch(context.Background(), recs)
	b.batches.Add(1)
	b.records.Add(int64(len(live)))
	if n := int64(len(live)); n > b.largest.Load() {
		b.largest.Store(n)
	}
	for i, r := range live {
		if err != nil {
			r.resp <- batchResp[O]{err: err}
			continue
		}
		r.resp <- batchResp[O]{out: outs[i]}
	}
}

// fail rejects a batch that could not be executed because the batcher is
// shutting down.
func (b *Batcher[I, O]) fail(batch []batchReq[I, O]) {
	for _, r := range batch {
		r.resp <- batchResp[O]{err: ErrBatcherClosed}
	}
}
