package dist

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
)

// Cluster is the coordinator's handle on a set of workers: one
// connection per worker, requests serialized per connection and fanned
// out across workers in parallel. Datasets are partitioned round-robin
// by global partition index (partition i lives on worker i mod W), so
// every worker can locate its share of any dataset without a directory.
type Cluster struct {
	conns []*workerConn
}

type workerConn struct {
	addr string
	mu   sync.Mutex // one in-flight request per connection
	conn net.Conn
}

// Connect dials every worker address and returns the cluster handle.
func Connect(addrs ...string) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dist: Connect needs at least one worker address")
	}
	c := &Cluster{}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: dial worker %s: %w", addr, err)
		}
		c.conns = append(c.conns, &workerConn{addr: addr, conn: conn})
	}
	return c, nil
}

// Close drops all worker connections (workers keep running; their
// resident datasets are freed only by Free or worker shutdown).
func (c *Cluster) Close() error {
	for _, wc := range c.conns {
		if wc != nil && wc.conn != nil {
			wc.conn.Close()
		}
	}
	return nil
}

// Workers returns the number of connected workers.
func (c *Cluster) Workers() int { return len(c.conns) }

// Addrs returns the connected worker addresses in cluster order.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.conns))
	for i, wc := range c.conns {
		out[i] = wc.addr
	}
	return out
}

// call sends one request to worker i and waits for its response.
func (c *Cluster) call(i int, req *request) (*response, error) {
	wc := c.conns[i]
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if err := writeFrame(wc.conn, req); err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", wc.addr, err)
	}
	var resp response
	if err := readFrame(wc.conn, &resp); err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", wc.addr, err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("dist: worker %s: %s", wc.addr, resp.Err)
	}
	return &resp, nil
}

// broadcast sends make(i)'s request to every worker concurrently and
// collects the responses (nil responses where make returned nil). The
// first error wins.
func (c *Cluster) broadcast(mk func(worker int) *request) ([]*response, error) {
	resps := make([]*response, len(c.conns))
	errs := make([]error, len(c.conns))
	var wg sync.WaitGroup
	for i := range c.conns {
		req := mk(i)
		if req == nil {
			continue
		}
		wg.Add(1)
		go func(i int, req *request) {
			defer wg.Done()
			resps[i], errs[i] = c.call(i, req)
		}(i, req)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return resps, nil
}

// Ping checks liveness of every worker and returns their replica HTTP
// addresses ("" for fit-only workers), in cluster order.
func (c *Cluster) Ping() ([]string, error) {
	resps, err := c.broadcast(func(int) *request { return &request{Op: opPing} })
	if err != nil {
		return nil, err
	}
	out := make([]string, len(resps))
	for i, r := range resps {
		out[i] = r.HTTPAddr
	}
	return out, nil
}

// Load ships a collection to the cluster under name, partition i to
// worker i mod W. Every worker receives a load (possibly empty) so the
// dataset exists everywhere.
func (c *Cluster) Load(name string, coll *engine.Collection) error {
	w := len(c.conns)
	perWorker := make([][]partition, w)
	for i := 0; i < coll.NumPartitions(); i++ {
		wi := i % w
		perWorker[wi] = append(perWorker[wi], partition{Index: i, Records: coll.Partition(i)})
	}
	_, err := c.broadcast(func(i int) *request {
		return &request{Op: opLoad, Dataset: name, Parts: perWorker[i]}
	})
	return err
}

// Apply runs op over src's partitions on every worker, storing the
// result as dst. The operator crosses the wire via core.EncodeOp, so op
// must be persistable (a StateCodec or a registered named op) — the
// same contract artifacts impose.
func (c *Cluster) Apply(dst, src string, op core.TransformOp) error {
	kind, state, err := core.EncodeOp(op)
	if err != nil {
		return fmt.Errorf("dist: operator %q not shippable: %w", op.Name(), err)
	}
	_, err = c.broadcast(func(int) *request {
		return &request{Op: opApply, Dataset: dst, Source: src, OpKind: kind, OpState: state}
	})
	return err
}

// Zip gather-joins a and b (feature concatenation, partition- and
// record-aligned) into dst on every worker.
func (c *Cluster) Zip(dst, a, b string) error {
	_, err := c.broadcast(func(int) *request {
		return &request{Op: opZip, Dataset: dst, Source: a, Source2: b}
	})
	return err
}

// Alias binds dst to src's partitions on every worker (a single-branch
// gather: the output is the input).
func (c *Cluster) Alias(dst, src string) error {
	_, err := c.broadcast(func(int) *request {
		return &request{Op: opAlias, Dataset: dst, Source: src}
	})
	return err
}

// Fetch pulls a dataset's partitions back from every worker and
// reassembles them in global partition order — the collection an
// estimator fit sees is bit-identical (same partition structure, same
// record order) to what a single-process fit would have seen.
func (c *Cluster) Fetch(name string) (*engine.Collection, error) {
	resps, err := c.broadcast(func(int) *request {
		return &request{Op: opFetch, Dataset: name}
	})
	if err != nil {
		return nil, err
	}
	var parts []partition
	for _, r := range resps {
		parts = append(parts, r.Parts...)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Index < parts[j].Index })
	ordered := make([][]any, len(parts))
	for i, p := range parts {
		if p.Index != i {
			return nil, fmt.Errorf("dist: fetch %q: missing partition %d", name, i)
		}
		ordered[i] = p.Records
	}
	return engine.FromPartitions(ordered), nil
}

// Free drops datasets on every worker.
func (c *Cluster) Free(names ...string) error {
	for _, name := range names {
		if _, err := c.broadcast(func(int) *request {
			return &request{Op: opFree, Dataset: name}
		}); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns each worker's resident datasets and record counts, in
// cluster order.
func (c *Cluster) Stats() ([]map[string]int, error) {
	resps, err := c.broadcast(func(int) *request { return &request{Op: opStats} })
	if err != nil {
		return nil, err
	}
	out := make([]map[string]int, len(resps))
	for i, r := range resps {
		out[i] = r.Counts
	}
	return out, nil
}

// ServeRoute ships one registry artifact reference to every worker's
// serving replica: each registers route (of the given registered kind)
// booted from the artifact, and the replica base URLs come back in
// cluster order — the router's replica set.
func (c *Cluster) ServeRoute(kind, route, ref string) ([]string, error) {
	resps, err := c.broadcast(func(int) *request {
		return &request{Op: opServe, Kind: kind, Route: route, Ref: ref}
	})
	if err != nil {
		return nil, err
	}
	addrs := make([]string, len(resps))
	for i, r := range resps {
		addrs[i] = r.HTTPAddr
	}
	return addrs, nil
}

// checkCtx returns the context's error, if any (the coordinator polls
// between remote dispatches, mirroring the engine's cancellation
// cadence).
func checkCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
