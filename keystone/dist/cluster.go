package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
)

// ClusterOptions configures the coordinator's failure behaviour. The
// zero value of every field selects a production-sane default; tests
// tighten the deadlines to make injected faults bite quickly.
type ClusterOptions struct {
	// Addrs are the worker wire addresses to dial.
	Addrs []string
	// OpTimeout is the per-call deadline on every wire exchange (write
	// request + read response). A call that outlives it is treated as a
	// transport failure: the connection is redialed and the request
	// re-sent, then the worker is declared dead. 0 = 2 minutes; < 0
	// disables deadlines.
	OpTimeout time.Duration
	// DialRetries is how many redial-and-resend attempts a failed call
	// gets before the worker is declared dead (default 2). Re-sending is
	// safe: every wire op is idempotent (applies replace or merge
	// deterministically, loads merge by partition index, serves
	// re-register the same artifact).
	DialRetries int
	// RetryBackoff is the wait before the first redial, doubling per
	// attempt (default 50ms).
	RetryBackoff time.Duration
	// Fault, when non-nil, arms deterministic fault injection on every
	// outgoing frame — public test infrastructure, see FaultPlan.
	Fault *FaultPlan
}

const (
	defaultOpTimeout    = 2 * time.Minute
	defaultDialRetries  = 2
	defaultRetryBackoff = 50 * time.Millisecond
)

// WorkerFailure is the error a wire call returns when a worker has been
// declared dead: its per-call deadline expired or its connection tore,
// and the bounded redial-with-backoff budget is spent. The coordinator's
// fit loop catches it, reassigns the dead worker's partitions, and
// replays their lineage on the survivors.
type WorkerFailure struct {
	Worker int    // cluster index of the dead worker
	Addr   string // its wire address
	Err    error  // the final transport error
}

// Error formats the failure.
func (e *WorkerFailure) Error() string {
	return fmt.Sprintf("dist: worker %d (%s) failed: %v", e.Worker, e.Addr, e.Err)
}

// Unwrap exposes the underlying transport error.
func (e *WorkerFailure) Unwrap() error { return e.Err }

// ErrNoLiveWorkers means every worker in the cluster has been declared
// dead — there is nothing left to reassign lost partitions to.
var ErrNoLiveWorkers = errors.New("dist: no live workers")

// Cluster is the coordinator's handle on a set of workers: one
// connection per worker, requests serialized per connection and fanned
// out across workers in parallel. Partition placement is explicit: the
// owners table (built at Load, rewritten by Reassign after a death) maps
// every global partition index to the worker holding it, so datasets
// start round-robin (partition i on worker i mod W) and survive
// arbitrary reassignment.
type Cluster struct {
	conns []*workerConn

	opTimeout time.Duration
	retries   int
	backoff   time.Duration
	fault     *FaultPlan

	mu     sync.Mutex
	owner  []int // global partition index -> worker index
	failed []int // workers declared dead, not yet drained via TakeFailed
}

type workerConn struct {
	addr string
	down atomic.Bool
	mu   sync.Mutex // one in-flight request per connection
	conn net.Conn
}

// Connect dials every worker address with default failure options and
// returns the cluster handle.
func Connect(addrs ...string) (*Cluster, error) {
	return ConnectWith(ClusterOptions{Addrs: addrs})
}

// ConnectWith dials every worker in opts.Addrs under the given failure
// options.
func ConnectWith(opts ClusterOptions) (*Cluster, error) {
	if len(opts.Addrs) == 0 {
		return nil, fmt.Errorf("dist: Connect needs at least one worker address")
	}
	c := &Cluster{
		opTimeout: opts.OpTimeout,
		retries:   opts.DialRetries,
		backoff:   opts.RetryBackoff,
		fault:     opts.Fault,
	}
	if c.opTimeout == 0 {
		c.opTimeout = defaultOpTimeout
	}
	if c.retries <= 0 {
		c.retries = defaultDialRetries
	}
	if c.backoff <= 0 {
		c.backoff = defaultRetryBackoff
	}
	for _, addr := range opts.Addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: dial worker %s: %w", addr, err)
		}
		c.conns = append(c.conns, &workerConn{addr: addr, conn: conn})
	}
	return c, nil
}

// Close drops all worker connections (workers keep running; their
// resident datasets are freed only by Free or worker shutdown).
func (c *Cluster) Close() error {
	for _, wc := range c.conns {
		if wc != nil && wc.conn != nil {
			wc.conn.Close()
		}
	}
	return nil
}

// Workers returns the number of workers the cluster was connected to,
// dead or alive.
func (c *Cluster) Workers() int { return len(c.conns) }

// LiveWorkers returns how many workers have not been declared dead.
func (c *Cluster) LiveWorkers() int { return len(c.live()) }

// Addrs returns the connected worker addresses in cluster order.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.conns))
	for i, wc := range c.conns {
		out[i] = wc.addr
	}
	return out
}

// live returns the indices of workers not declared dead, in cluster
// order.
func (c *Cluster) live() []int {
	var out []int
	for i, wc := range c.conns {
		if !wc.down.Load() {
			out = append(out, i)
		}
	}
	return out
}

// TakeFailed returns the workers declared dead since the last call and
// clears the list — the fit loop drains it before every dispatch, so a
// death detected on a best-effort call (a free whose error was
// swallowed) still triggers lineage recovery before the next real op.
func (c *Cluster) TakeFailed() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.failed
	c.failed = nil
	return out
}

// declareDead marks worker i down and queues it for TakeFailed.
func (c *Cluster) declareDead(i int) {
	wc := c.conns[i]
	if wc.down.Swap(true) {
		return // already dead
	}
	c.mu.Lock()
	c.failed = append(c.failed, i)
	c.mu.Unlock()
}

// call sends one request to worker i and waits for its response, under
// the per-call deadline. A transport failure gets DialRetries
// redial-and-resend attempts with doubling backoff (every wire op is
// idempotent, so a re-send after a lost response is safe); when the
// budget is spent the worker is declared dead and a *WorkerFailure
// returned. Application-level errors from a live worker (resp.Err) come
// back as plain errors and never count against the worker.
func (c *Cluster) call(i int, req *request) (*response, error) {
	wc := c.conns[i]
	if wc.down.Load() {
		return nil, &WorkerFailure{Worker: i, Addr: wc.addr, Err: errors.New("worker already declared dead")}
	}
	wc.mu.Lock()
	defer wc.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff << (attempt - 1))
			conn, err := net.DialTimeout("tcp", wc.addr, c.dialTimeout())
			if err != nil {
				lastErr = err
				continue
			}
			wc.conn.Close()
			wc.conn = conn
		}
		resp, err := c.exchange(i, wc, req)
		if err == nil {
			if resp.Err != "" {
				return nil, fmt.Errorf("dist: worker %s: %s", wc.addr, resp.Err)
			}
			return resp, nil
		}
		lastErr = err
	}
	wc.conn.Close()
	c.declareDead(i)
	return nil, &WorkerFailure{Worker: i, Addr: wc.addr, Err: lastErr}
}

func (c *Cluster) dialTimeout() time.Duration {
	if c.opTimeout > 0 {
		return c.opTimeout
	}
	return defaultOpTimeout
}

// exchange performs one framed request/response on the worker's current
// connection, applying the armed fault plan and the per-call deadline.
func (c *Cluster) exchange(i int, wc *workerConn, req *request) (*response, error) {
	// Deadline first, injection second: an injected delay longer than the
	// deadline then trips it exactly like a hung worker would.
	if c.opTimeout > 0 {
		wc.conn.SetDeadline(time.Now().Add(c.opTimeout)) //nolint:errcheck // a failed deadline set surfaces as the I/O error
	}
	if c.fault != nil {
		switch act := c.fault.observe(i, req.Op); act.mode {
		case FaultDelay:
			time.Sleep(act.delay)
		case FaultDrop:
			return nil, &faultDropError{op: req.Op, worker: i}
		case FaultSever:
			wc.conn.Close()
			if c.fault.OnSever != nil {
				c.fault.OnSever(i)
			}
			// Fall through: the write below fails on the closed conn,
			// exactly as a mid-send connection loss would.
		}
	}
	if err := writeFrame(wc.conn, req); err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", wc.addr, err)
	}
	var resp response
	if err := readFrame(wc.conn, &resp); err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", wc.addr, err)
	}
	if c.opTimeout > 0 {
		wc.conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort clear
	}
	return &resp, nil
}

// broadcast sends make(i)'s request to every live worker concurrently
// and collects the responses (nil responses where make returned nil or
// the worker is dead). A *WorkerFailure wins over other errors so the
// caller's recovery loop sees the death first.
func (c *Cluster) broadcast(mk func(worker int) *request) ([]*response, error) {
	live := c.live()
	if len(live) == 0 {
		return nil, ErrNoLiveWorkers
	}
	resps := make([]*response, len(c.conns))
	errs := make([]error, len(c.conns))
	var wg sync.WaitGroup
	for _, i := range live {
		req := mk(i)
		if req == nil {
			continue
		}
		wg.Add(1)
		go func(i int, req *request) {
			defer wg.Done()
			resps[i], errs[i] = c.call(i, req)
		}(i, req)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var wf *WorkerFailure
		if errors.As(err, &wf) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return resps, nil
}

// Ping checks liveness of every live worker and returns their replica
// HTTP addresses ("" for fit-only workers), in cluster order.
func (c *Cluster) Ping() ([]string, error) {
	resps, err := c.broadcast(func(int) *request { return &request{Op: opPing} })
	if err != nil {
		return nil, err
	}
	out := make([]string, len(resps))
	for i, r := range resps {
		if r != nil {
			out[i] = r.HTTPAddr
		}
	}
	return out, nil
}

// Load ships a collection to the cluster under name and (re)builds the
// owners table: partition i goes to the i-th live worker round-robin.
// Every live worker receives a load (possibly empty) so the dataset
// exists everywhere.
func (c *Cluster) Load(name string, coll *engine.Collection) error {
	live := c.live()
	if len(live) == 0 {
		return ErrNoLiveWorkers
	}
	c.mu.Lock()
	c.owner = make([]int, coll.NumPartitions())
	for i := range c.owner {
		c.owner[i] = live[i%len(live)]
	}
	owner := append([]int(nil), c.owner...)
	c.mu.Unlock()

	perWorker := make(map[int][]partition, len(live))
	for i := 0; i < coll.NumPartitions(); i++ {
		w := owner[i]
		perWorker[w] = append(perWorker[w], partition{Index: i, Records: coll.Partition(i)})
	}
	_, err := c.broadcast(func(i int) *request {
		return &request{Op: opLoad, Dataset: name, Parts: perWorker[i]}
	})
	return err
}

// LoadParts ships specific partitions of a dataset to one worker,
// merging them into whatever that worker already holds under name — the
// root step of a lineage replay.
func (c *Cluster) LoadParts(worker int, name string, parts []partition) error {
	only := make([]int, len(parts))
	for i, p := range parts {
		only[i] = p.Index
	}
	_, err := c.call(worker, &request{Op: opLoad, Dataset: name, Parts: parts, Only: only})
	return err
}

// Owners returns a copy of the partition owners table (nil before the
// first Load).
func (c *Cluster) Owners() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.owner...)
}

// Reassign redistributes a dead worker's partitions round-robin over
// the survivors and returns the lost partition indices grouped by their
// new owner. It is a pure bookkeeping step: the data itself is rebuilt
// by replaying lineage onto the new owners.
func (c *Cluster) Reassign(dead int) (map[int][]int, error) {
	live := c.live()
	if len(live) == 0 {
		return nil, ErrNoLiveWorkers
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	moved := make(map[int][]int)
	n := 0
	for p, w := range c.owner {
		if w != dead {
			continue
		}
		nw := live[n%len(live)]
		n++
		c.owner[p] = nw
		moved[nw] = append(moved[nw], p)
	}
	return moved, nil
}

// Apply runs op over src's partitions on every live worker, storing the
// result as dst. The operator crosses the wire via core.EncodeOp, so op
// must be persistable (a StateCodec or a registered named op) — the
// same contract artifacts impose.
func (c *Cluster) Apply(dst, src string, op core.TransformOp) error {
	kind, state, err := core.EncodeOp(op)
	if err != nil {
		return fmt.Errorf("dist: operator %q not shippable: %w", op.Name(), err)
	}
	return c.ApplyEncoded(dst, src, kind, state)
}

// ApplyEncoded is Apply with the operator already encoded — the form
// the fit loop uses so one encoding serves both the wire and the
// lineage record.
func (c *Cluster) ApplyEncoded(dst, src, kind string, state []byte) error {
	_, err := c.broadcast(func(int) *request {
		return &request{Op: opApply, Dataset: dst, Source: src, OpKind: kind, OpState: state}
	})
	return err
}

// ApplyParts replays the encoded operator over exactly the given global
// partitions of src on one worker, merging the results into dst there.
func (c *Cluster) ApplyParts(worker int, dst, src, kind string, state []byte, only []int) error {
	_, err := c.call(worker, &request{Op: opApply, Dataset: dst, Source: src, OpKind: kind, OpState: state, Only: only})
	return err
}

// Zip gather-joins a and b (feature concatenation, partition- and
// record-aligned) into dst on every live worker.
func (c *Cluster) Zip(dst, a, b string) error {
	_, err := c.broadcast(func(int) *request {
		return &request{Op: opZip, Dataset: dst, Source: a, Source2: b}
	})
	return err
}

// ZipParts replays the gather-join of a and b over exactly the given
// global partitions on one worker, merging into dst.
func (c *Cluster) ZipParts(worker int, dst, a, b string, only []int) error {
	_, err := c.call(worker, &request{Op: opZip, Dataset: dst, Source: a, Source2: b, Only: only})
	return err
}

// Alias binds dst to src's partitions on every live worker (a
// single-branch gather: the output is the input).
func (c *Cluster) Alias(dst, src string) error {
	_, err := c.broadcast(func(int) *request {
		return &request{Op: opAlias, Dataset: dst, Source: src}
	})
	return err
}

// AliasParts replays the alias for exactly the given global partitions
// on one worker, merging into dst.
func (c *Cluster) AliasParts(worker int, dst, src string, only []int) error {
	_, err := c.call(worker, &request{Op: opAlias, Dataset: dst, Source: src, Only: only})
	return err
}

// Fetch pulls a dataset's partitions back from every live worker and
// reassembles them in global partition order — the collection an
// estimator fit sees is bit-identical (same partition structure, same
// record order) to what a single-process fit would have seen.
func (c *Cluster) Fetch(name string) (*engine.Collection, error) {
	resps, err := c.broadcast(func(int) *request {
		return &request{Op: opFetch, Dataset: name}
	})
	if err != nil {
		return nil, err
	}
	var parts []partition
	for _, r := range resps {
		if r != nil {
			parts = append(parts, r.Parts...)
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Index < parts[j].Index })
	ordered := make([][]any, len(parts))
	for i, p := range parts {
		if p.Index != i {
			return nil, fmt.Errorf("dist: fetch %q: missing partition %d", name, i)
		}
		ordered[i] = p.Records
	}
	return engine.FromPartitions(ordered), nil
}

// Free drops datasets on every live worker.
func (c *Cluster) Free(names ...string) error {
	for _, name := range names {
		if _, err := c.broadcast(func(int) *request {
			return &request{Op: opFree, Dataset: name}
		}); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns each live worker's resident datasets and record counts,
// in cluster order (nil entries for dead workers).
func (c *Cluster) Stats() ([]map[string]int, error) {
	resps, err := c.broadcast(func(int) *request { return &request{Op: opStats} })
	if err != nil {
		return nil, err
	}
	out := make([]map[string]int, len(resps))
	for i, r := range resps {
		if r != nil {
			out[i] = r.Counts
		}
	}
	return out, nil
}

// ServeRoute ships one registry artifact reference to every live
// worker's serving replica: each registers route (of the given
// registered kind) booted from the artifact, and the replica base URLs
// come back in cluster order — the router's replica set.
func (c *Cluster) ServeRoute(kind, route, ref string) ([]string, error) {
	resps, err := c.broadcast(func(int) *request {
		return &request{Op: opServe, Kind: kind, Route: route, Ref: ref}
	})
	if err != nil {
		return nil, err
	}
	addrs := make([]string, 0, len(resps))
	for _, r := range resps {
		if r != nil {
			addrs = append(addrs, r.HTTPAddr)
		}
	}
	return addrs, nil
}

// checkCtx returns the context's error, if any (the coordinator polls
// between remote dispatches, mirroring the engine's cancellation
// cadence).
func checkCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
