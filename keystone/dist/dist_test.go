package dist

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"keystoneml/internal/engine"
	"keystoneml/keystone"
	"keystoneml/keystone/registry"
	"keystoneml/keystone/serve"
)

// startCluster boots n in-process workers over real TCP loopback sockets
// and a coordinator connected to them.
func startCluster(t *testing.T, n int, opts WorkerOptions) (*Cluster, []*Worker) {
	t.Helper()
	workers := make([]*Worker, n)
	addrs := make([]string, n)
	for i := range workers {
		o := opts
		o.Listen = "127.0.0.1:0"
		w, err := StartWorker(o)
		if err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		t.Cleanup(func() { w.Close() })
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := Connect(addrs...)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, workers
}

// TestWireRoundTrip loads a partitioned collection onto two workers over
// the real wire, fetches it back, and checks both content and partition
// structure survived bit for bit.
func TestWireRoundTrip(t *testing.T) {
	cl, _ := startCluster(t, 2, WorkerOptions{})

	recs := make([]any, 17)
	for i := range recs {
		recs[i] = fmt.Sprintf("doc %d", i)
	}
	coll := engine.FromSlice(recs, 5)
	if err := cl.Load("d", coll); err != nil {
		t.Fatalf("load: %v", err)
	}

	got, err := cl.Fetch("d")
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if got.NumPartitions() != coll.NumPartitions() {
		t.Fatalf("fetched %d partitions, want %d", got.NumPartitions(), coll.NumPartitions())
	}
	for i := 0; i < coll.NumPartitions(); i++ {
		if !reflect.DeepEqual(got.Partition(i), coll.Partition(i)) {
			t.Fatalf("partition %d changed across the wire", i)
		}
	}

	// Stats shows the round-robin split: 5 partitions over 2 workers.
	stats, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	total := 0
	for _, per := range stats {
		total += per["d"]
	}
	if total != len(recs) {
		t.Fatalf("workers hold %d records, want %d", total, len(recs))
	}

	if err := cl.Free("d"); err != nil {
		t.Fatalf("free: %v", err)
	}
	if _, err := cl.Fetch("d"); err == nil {
		t.Fatal("fetch after free succeeded")
	}
}

// TestApplyNotShippable: an anonymous closure operator (no state codec,
// not registered) must be rejected client-side with a clear error.
func TestApplyNotShippable(t *testing.T) {
	cl, _ := startCluster(t, 1, WorkerOptions{})
	op := keystone.NewOp("anon", func(s string) string { return s })
	if err := cl.Load("d", engine.FromSlice([]any{"x"}, 1)); err != nil {
		t.Fatal(err)
	}
	g, out := keystone.Then(keystone.Input[string](), op).EngineGraph()
	_ = out
	err := cl.Apply("e", "d", g.Sink.Transform)
	if err == nil {
		t.Fatal("shipping an unregistered closure succeeded")
	}
}

// TestFitBitIdentical is the acceptance check: a distributed fit of the
// Figure 2 text pipeline over 2 worker processes must produce a model
// whose predictions are bit-identical (exact float equality) to the
// single-process oracle at the same optimizer level.
func TestFitBitIdentical(t *testing.T) {
	train := keystone.SyntheticReviews(120, 1)
	test := keystone.SyntheticReviews(30, 2)
	p := keystone.TextPipeline(keystone.TextConfig{NumFeatures: 400, Iterations: 5})

	local, err := p.Fit(context.Background(), train.Records, train.Labels,
		keystone.WithOptimizerLevel(keystone.LevelPipeline),
		keystone.WithSampleSizes(16, 32),
		keystone.WithPartitions(4),
		keystone.WithWorkers(1))
	if err != nil {
		t.Fatalf("local fit: %v", err)
	}

	cl, _ := startCluster(t, 2, WorkerOptions{})
	distFit, rep, err := Fit(context.Background(), cl, p, train.Records, train.Labels, FitOptions{
		Level:       keystone.LevelPipeline,
		SampleSizes: [2]int{16, 32},
		Partitions:  4,
	})
	if err != nil {
		t.Fatalf("dist fit: %v", err)
	}
	if rep.Workers != 2 || rep.Partitions != 4 {
		t.Fatalf("report = %+v, want 2 workers / 4 partitions", rep)
	}
	if rep.ModeledMakespan <= 0 {
		t.Fatalf("modeled makespan = %g, want > 0", rep.ModeledMakespan)
	}

	for i, doc := range test.Records {
		want, err := local.Transform(context.Background(), doc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := distFit.Transform(context.Background(), doc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("doc %d: dist prediction %v != local %v", i, got, want)
		}
	}

	// The run cleans up after itself: no datasets left resident.
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for wi, per := range stats {
		if len(per) != 0 {
			t.Fatalf("worker %d still holds %v after fit", wi, per)
		}
	}
}

// TestFitCancel: a canceled context aborts the distributed fit with the
// context error rather than hanging or panicking.
func TestFitCancel(t *testing.T) {
	cl, _ := startCluster(t, 2, WorkerOptions{})
	train := keystone.SyntheticReviews(80, 1)
	p := keystone.TextPipeline(keystone.TextConfig{NumFeatures: 200, Iterations: 3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Fit(ctx, cl, p, train.Records, train.Labels, FitOptions{
		Level:       keystone.LevelPipeline,
		SampleSizes: [2]int{16, 32},
	})
	if err == nil {
		t.Fatal("canceled fit succeeded")
	}
}

// TestFitValidation covers the argument contract.
func TestFitValidation(t *testing.T) {
	cl, _ := startCluster(t, 1, WorkerOptions{})
	p := keystone.TextPipeline(keystone.TextConfig{NumFeatures: 100, Iterations: 2})
	if _, _, err := Fit(context.Background(), cl, p, nil, nil, FitOptions{}); err == nil {
		t.Fatal("empty fit succeeded")
	}
	if _, _, err := Fit(context.Background(), cl, p, []string{"a", "b"}, [][]float64{{1}}, FitOptions{}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	if _, _, err := Fit(context.Background(), cl, p, []string{"a"}, nil, FitOptions{}); err == nil {
		t.Fatal("supervised pipeline accepted nil labels")
	}
}

// TestServeRouteAndRouter drives the full sharded-serving path: fit,
// encode to a registry, ship the artifact id to every worker replica via
// the wire serve op, front the replicas with the consistent-hash router,
// predict through it, push rollout state, then kill one worker and
// verify the router keeps serving from the survivor.
func TestServeRouteAndRouter(t *testing.T) {
	regDir := t.TempDir()
	reg, err := registry.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}

	train := keystone.SyntheticReviews(100, 1)
	p := keystone.TextPipeline(keystone.TextConfig{NumFeatures: 200, Iterations: 3})
	fitted, err := p.Fit(context.Background(), train.Records, train.Labels,
		keystone.WithOptimizerLevel(keystone.LevelPipeline),
		keystone.WithSampleSizes(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := keystone.Encode(fitted)
	if err != nil {
		t.Fatal(err)
	}
	id, err := reg.Put(blob)
	if err != nil {
		t.Fatal(err)
	}

	RegisterServeKind("disttest-text", func(srv *serve.Server, store serve.ArtifactStore, route, ref string) error {
		_, err := serve.RegisterArtifact[string, []float64](srv, route, store, ref, serve.TextCodec{})
		return err
	})

	cl, workers := startCluster(t, 2, WorkerOptions{HTTPListen: "127.0.0.1:0", RegistryDir: regDir})
	replicas, err := cl.ServeRoute("disttest-text", "text", id)
	if err != nil {
		t.Fatalf("serve route: %v", err)
	}
	if len(replicas) != 2 || replicas[0] == "" || replicas[1] == "" {
		t.Fatalf("replica addrs = %v", replicas)
	}

	router, err := NewRouter(RouterOptions{Replicas: replicas, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	doc := train.Records[0]
	want, err := fitted.Transform(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	got := predictViaRouter(t, router, doc)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("router prediction %v != direct %v", got, want)
	}

	// Same affinity key must keep landing on the same replica (warm
	// state); different keys spread.
	if a, b := routedReplica(t, router, "stable-key"), routedReplica(t, router, "stable-key"); a != b {
		t.Fatalf("same key routed to %s then %s", a, b)
	}

	// Push shared rollout state and verify it landed on every replica.
	cap := 7
	if err := router.PushRollout(context.Background(), "text", serve.RolloutState{MaxInFlight: &cap}); err != nil {
		t.Fatalf("push rollout: %v", err)
	}
	for _, addr := range replicas {
		st := getRolloutState(t, addr, "text")
		if st.MaxInFlight == nil || *st.MaxInFlight != 7 {
			t.Fatalf("replica %s rollout state = %+v, want MaxInFlight 7", addr, st)
		}
	}

	// Kill one worker: the router must degrade to the survivor, not 503.
	workers[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := predictViaRouterMaybe(router, doc); got != nil {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("degraded prediction %v != direct %v", got, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router never recovered after losing one replica")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The health loop (or a failed forward) marks the killed replica
	// down shortly after.
	for {
		sawDown := false
		for _, rs := range router.Replicas() {
			if !rs.Healthy {
				sawDown = true
			}
		}
		if sawDown {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router never marked the killed replica down")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
