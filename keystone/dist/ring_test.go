package dist

import (
	"fmt"
	"testing"
)

// ringRouter builds a router over fake replica addresses with the health
// loop disabled — pick() never dials, so ring properties are testable
// without sockets.
func ringRouter(t *testing.T, n int) *Router {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("http://10.0.0.%d:7000", i+1)
	}
	rt, err := NewRouter(RouterOptions{Replicas: addrs, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestRingRemovalRemapsOneNth is the consistent-hashing contract: when 1
// of N replicas goes down, ONLY the keys it owned move (to survivors),
// and that is roughly 1/N of the keyspace — not a full reshuffle.
func TestRingRemovalRemapsOneNth(t *testing.T) {
	const n, keys = 5, 10000
	rt := ringRouter(t, n)

	before := make([]string, keys)
	for k := 0; k < keys; k++ {
		rep, _ := rt.pick([]byte(fmt.Sprintf("entity-%d", k)))
		before[k] = rep.addr
	}

	removed := rt.replicas[2]
	removed.up.Store(false)

	moved := 0
	for k := 0; k < keys; k++ {
		rep, _ := rt.pick([]byte(fmt.Sprintf("entity-%d", k)))
		if before[k] == removed.addr {
			moved++
			if rep.addr == removed.addr {
				t.Fatalf("key %d still routed to the removed replica", k)
			}
			continue
		}
		if rep.addr != before[k] {
			t.Fatalf("key %d moved from %s to %s though its replica survived", k, before[k], rep.addr)
		}
	}

	// The removed replica's share should be about 1/N; with 64 vnodes the
	// spread is loose but a full reshuffle (share ~1) or a dead replica
	// (share ~0) is way outside these bounds.
	frac := float64(moved) / keys
	if frac < 0.5/n || frac > 2.0/n {
		t.Fatalf("removing 1 of %d replicas remapped %.1f%% of keys, want ~%.1f%%", n, 100*frac, 100.0/n)
	}
	t.Logf("removal remapped %d/%d keys (%.1f%%, ideal %.1f%%)", moved, keys, 100*frac, 100.0/n)
}

// TestRingAffinityStableAcrossRestart: the ring is a pure function of
// the replica address list, so a restarted router (same replicas, fresh
// process state) routes every key to the same replica — affinity
// survives coordinator restarts without any persisted state.
func TestRingAffinityStableAcrossRestart(t *testing.T) {
	const n, keys = 4, 5000
	a := ringRouter(t, n)
	b := ringRouter(t, n) // the "restarted" router: same addrs, fresh state
	for k := 0; k < keys; k++ {
		key := []byte(fmt.Sprintf("user:%d", k))
		ra, _ := a.pick(key)
		rb, _ := b.pick(key)
		if ra.addr != rb.addr {
			t.Fatalf("key %q routed to %s before restart, %s after", key, ra.addr, rb.addr)
		}
	}
}

// TestRingRejoinRestoresAffinity: a replica that goes down and comes
// back reclaims exactly its old keyspace — spillover during the outage
// does not permanently steal affinity.
func TestRingRejoinRestoresAffinity(t *testing.T) {
	const n, keys = 3, 3000
	rt := ringRouter(t, n)
	before := make([]string, keys)
	for k := 0; k < keys; k++ {
		rep, _ := rt.pick([]byte(fmt.Sprintf("k%d", k)))
		before[k] = rep.addr
	}
	rt.replicas[0].up.Store(false)
	rt.replicas[0].up.Store(true)
	for k := 0; k < keys; k++ {
		rep, _ := rt.pick([]byte(fmt.Sprintf("k%d", k)))
		if rep.addr != before[k] {
			t.Fatalf("key %d owned by %s before the outage, %s after rejoin", k, before[k], rep.addr)
		}
	}
}

// TestRingSpreadAcrossReplicas: vnode placement must not starve any
// replica — every replica owns a non-trivial share of the keyspace.
func TestRingSpreadAcrossReplicas(t *testing.T) {
	const n, keys = 4, 8000
	rt := ringRouter(t, n)
	counts := make(map[string]int)
	for k := 0; k < keys; k++ {
		rep, _ := rt.pick([]byte(fmt.Sprintf("doc/%d", k)))
		counts[rep.addr]++
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d replicas own keys: %v", len(counts), n, counts)
	}
	// 64 vnodes per replica leaves real variance in shares; the property
	// guarded here is no starvation, not perfect balance.
	for addr, c := range counts {
		share := float64(c) / keys
		if share < 0.2/n {
			t.Fatalf("replica %s owns only %.1f%% of keys (ideal %.1f%%): %v", addr, 100*share, 100.0/n, counts)
		}
	}
}
