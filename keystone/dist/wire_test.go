package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// frameBytes encodes v as one wire frame.
func frameBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadFrameMalformed pins the decoder's failure taxonomy: every
// malformed input maps onto exactly one typed sentinel via errors.Is,
// and none of them panic or hang.
func TestReadFrameMalformed(t *testing.T) {
	valid := frameBytes(t, &request{Op: opPing})

	oversize := make([]byte, 4)
	binary.BigEndian.PutUint32(oversize, maxFrame+1)

	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, 0xFFFFFFFF)

	shortPayload := append([]byte(nil), valid[:len(valid)-3]...)

	garbage := func() []byte {
		payload := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}
		hdr := make([]byte, 4)
		binary.BigEndian.PutUint32(hdr, uint32(len(payload)))
		return append(hdr, payload...)
	}()

	empty := func() []byte {
		hdr := make([]byte, 4)
		return hdr // length 0, no payload: gob gets zero bytes
	}()

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"clean EOF at boundary", nil, io.EOF},
		{"torn header 1 byte", valid[:1], ErrFrameTruncated},
		{"torn header 3 bytes", valid[:3], ErrFrameTruncated},
		{"oversize prefix cap+1", oversize, ErrFrameTooLarge},
		{"oversize prefix max uint32", huge, ErrFrameTooLarge},
		{"truncated payload", shortPayload, ErrFrameTruncated},
		{"header only, missing payload", valid[:4], ErrFrameTruncated},
		{"garbage gob payload", garbage, ErrFrameCorrupt},
		{"zero-length payload", empty, ErrFrameCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req request
			err := readFrame(bytes.NewReader(tc.in), &req)
			if err == nil {
				t.Fatalf("malformed frame decoded: %+v", req)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
		})
	}
}

// TestReadFrameRoundTrip: a well-formed frame decodes to exactly what
// was written, and the stream position lands on the next frame boundary.
func TestReadFrameRoundTrip(t *testing.T) {
	in := &request{
		Op:      opApply,
		Dataset: "dst",
		Source:  "src",
		OpKind:  "k",
		OpState: []byte{1, 2, 3},
		Only:    []int{0, 2},
		Parts:   []partition{{Index: 1, Records: []any{"a", "b"}}},
	}
	stream := append(frameBytes(t, in), frameBytes(t, &request{Op: opPing})...)
	r := bytes.NewReader(stream)
	var got request
	if err := readFrame(r, &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != in.Op || got.Dataset != in.Dataset || len(got.Only) != 2 || len(got.Parts) != 1 {
		t.Fatalf("round trip mangled the frame: %+v", got)
	}
	var next request
	if err := readFrame(r, &next); err != nil || next.Op != opPing {
		t.Fatalf("second frame = %+v, %v", next, err)
	}
	var eof request
	if err := readFrame(r, &eof); err != io.EOF {
		t.Fatalf("stream end = %v, want io.EOF", err)
	}
}

// FuzzReadFrame: for arbitrary bytes the decoder must terminate without
// panicking and classify every failure as io.EOF or one of the typed
// sentinels — garbage never surfaces as an unclassified error, and a
// frame the decoder accepts must re-encode.
func FuzzReadFrame(f *testing.F) {
	var seedBuf bytes.Buffer
	writeFrame(&seedBuf, &request{Op: opApply, Dataset: "d", Source: "s", Only: []int{1}}) //nolint:errcheck // seed
	f.Add(seedBuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})
	corrupt := append([]byte(nil), seedBuf.Bytes()...)
	if len(corrupt) > 6 {
		corrupt[6] ^= 0x5A
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		err := readFrame(bytes.NewReader(data), &req)
		if err == nil {
			var buf bytes.Buffer
			if werr := writeFrame(&buf, &req); werr != nil {
				t.Fatalf("accepted frame does not re-encode: %v", werr)
			}
			return
		}
		if err == io.EOF {
			return
		}
		if !errors.Is(err, ErrFrameTruncated) && !errors.Is(err, ErrFrameTooLarge) && !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("unclassified decode error: %v", err)
		}
	})
}
