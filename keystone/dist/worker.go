package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/keystone/registry"
	"keystoneml/keystone/serve"
)

// WorkerOptions configures a worker process.
type WorkerOptions struct {
	// Listen is the TCP address for the wire protocol ("127.0.0.1:0"
	// picks a free port; see Worker.Addr).
	Listen string
	// HTTPListen, when non-empty, additionally runs a serve.Server
	// replica on this address; routes are registered onto it via the
	// serve wire op (shipping a registry artifact id).
	HTTPListen string
	// RegistryDir is the artifact registry backing serve ops (required
	// for them; fit-only workers can omit it).
	RegistryDir string
	// Parallelism bounds the worker's partition-level parallelism
	// (default 1: on a multi-worker host, cores are divided between
	// processes, not multiplied).
	Parallelism int
}

// Worker holds partitions of distributed collections and executes wire
// ops against them; optionally it also hosts a serving replica. Start
// one with StartWorker (in-process, as the tests do) or via
// cmd/keyworker (a real process, as dist-smoke does).
type Worker struct {
	ln     net.Listener
	ctx    *engine.Context
	regDir string

	httpLn  net.Listener
	httpSrv *http.Server
	srv     *serve.Server

	mu     sync.Mutex
	data   map[string]map[int][]any // dataset -> global partition index -> records
	store  serve.ArtifactStore      // opened lazily for serve ops
	routes map[string]string        // route -> artifact ref registered on the replica

	closeOnce sync.Once
	closed    chan struct{}
	done      chan struct{}
}

// StartWorker binds the worker's listeners and starts serving the wire
// protocol in the background.
func StartWorker(opts WorkerOptions) (*Worker, error) {
	par := opts.Parallelism
	if par <= 0 {
		par = 1
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("dist: worker listen %s: %w", opts.Listen, err)
	}
	w := &Worker{
		ln:     ln,
		ctx:    engine.NewContext(par),
		regDir: opts.RegistryDir,
		data:   make(map[string]map[int][]any),
		routes: make(map[string]string),
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	if opts.HTTPListen != "" {
		hln, err := net.Listen("tcp", opts.HTTPListen)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("dist: worker http listen %s: %w", opts.HTTPListen, err)
		}
		w.httpLn = hln
		w.srv = serve.NewServer()
		w.httpSrv = &http.Server{Handler: http.HandlerFunc(w.replicaHTTP)}
		go w.httpSrv.Serve(hln) //nolint:errcheck // Serve returns on Close
	}
	go w.acceptLoop()
	return w, nil
}

// Addr returns the wire-protocol address the worker is listening on.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// HTTPAddr returns the serving replica's base URL, or "" when the
// worker runs without one.
func (w *Worker) HTTPAddr() string {
	if w.httpLn == nil {
		return ""
	}
	return "http://" + w.httpLn.Addr().String()
}

// Wait blocks until the worker is closed.
func (w *Worker) Wait() { <-w.done }

// Close shuts the worker down: listeners first (no new connections),
// then the serving replica's routes drain.
func (w *Worker) Close() error {
	w.closeOnce.Do(func() {
		close(w.closed)
		w.ln.Close()
		if w.httpSrv != nil {
			w.httpSrv.Close()
			w.srv.Close()
		}
		close(w.done)
	})
	return nil
}

func (w *Worker) acceptLoop() {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go w.serveConn(conn)
	}
}

// serveConn answers requests on one coordinator connection in order
// until the connection drops or the worker closes.
func (w *Worker) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		select {
		case <-w.closed:
			return
		default:
		}
		var req request
		if err := readFrame(conn, &req); err != nil {
			return // EOF or torn frame: the coordinator is gone
		}
		resp := w.handle(&req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// handle executes one request. Operator and engine panics (bad record
// types, partition mismatches) become per-request errors, not worker
// deaths: the coordinator decides what to do with a failed op.
func (w *Worker) handle(req *request) (resp *response) {
	resp = &response{}
	defer func() {
		if r := recover(); r != nil {
			resp.Err = fmt.Sprintf("worker %s: %v", req.Op, r)
		}
	}()
	if err := w.dispatch(req, resp); err != nil {
		resp.Err = err.Error()
	}
	return resp
}

func (w *Worker) dispatch(req *request, resp *response) error {
	switch req.Op {
	case opPing:
		resp.HTTPAddr = w.HTTPAddr()
		return nil
	case opLoad:
		w.mu.Lock()
		defer w.mu.Unlock()
		// A scoped load (Only set — lineage replay) merges into what is
		// already resident; an unscoped load replaces the dataset
		// wholesale, so a retried Load after a reassignment cannot leave
		// stale partitions from the previous owner table behind.
		ds := w.data[req.Dataset]
		if ds == nil || len(req.Only) == 0 {
			ds = make(map[int][]any, len(req.Parts))
			w.data[req.Dataset] = ds
		}
		for _, p := range req.Parts {
			ds[p.Index] = p.Records
		}
		return nil
	case opApply:
		op, err := core.DecodeOp(req.OpKind, req.OpState)
		if err != nil {
			return fmt.Errorf("dist: decode op %q: %w", req.OpKind, err)
		}
		idx, coll, err := w.source(req.Source, req.Only)
		if err != nil {
			return err
		}
		out := w.ctx.Map(coll, op.Apply)
		w.putParts(req.Dataset, idx, out, len(req.Only) > 0)
		return nil
	case opZip:
		idxA, collA, err := w.source(req.Source, req.Only)
		if err != nil {
			return err
		}
		idxB, collB, err := w.source(req.Source2, req.Only)
		if err != nil {
			return err
		}
		if len(idxA) != len(idxB) {
			return fmt.Errorf("dist: zip %q(%d parts) with %q(%d parts)", req.Source, len(idxA), req.Source2, len(idxB))
		}
		for i := range idxA {
			if idxA[i] != idxB[i] {
				return fmt.Errorf("dist: zip partition index mismatch %d != %d", idxA[i], idxB[i])
			}
		}
		out := w.ctx.Zip(collA, collB, core.ConcatFeatures)
		w.putParts(req.Dataset, idxA, out, len(req.Only) > 0)
		return nil
	case opAlias:
		w.mu.Lock()
		defer w.mu.Unlock()
		src, ok := w.data[req.Source]
		if !ok {
			return fmt.Errorf("dist: no dataset %q", req.Source)
		}
		if len(req.Only) > 0 {
			dst := w.data[req.Dataset]
			if dst == nil {
				dst = make(map[int][]any, len(req.Only))
				w.data[req.Dataset] = dst
			}
			for _, gi := range req.Only {
				recs, ok := src[gi]
				if !ok {
					return fmt.Errorf("dist: alias %q: partition %d not resident", req.Source, gi)
				}
				dst[gi] = recs
			}
			return nil
		}
		dst := make(map[int][]any, len(src))
		for i, recs := range src {
			dst[i] = recs
		}
		w.data[req.Dataset] = dst
		return nil
	case opFetch:
		idx, coll, err := w.collection(req.Dataset)
		if err != nil {
			return err
		}
		resp.Parts = make([]partition, len(idx))
		for i, gi := range idx {
			resp.Parts[i] = partition{Index: gi, Records: coll.Partition(i)}
		}
		return nil
	case opFree:
		w.mu.Lock()
		delete(w.data, req.Dataset)
		w.mu.Unlock()
		return nil
	case opStats:
		w.mu.Lock()
		defer w.mu.Unlock()
		resp.Counts = make(map[string]int, len(w.data))
		for name, parts := range w.data {
			n := 0
			for _, recs := range parts {
				n += len(recs)
			}
			resp.Counts[name] = n
		}
		return nil
	case opServe:
		addr, err := w.serveRoute(req.Kind, req.Route, req.Ref)
		resp.HTTPAddr = addr
		return err
	default:
		return fmt.Errorf("dist: unknown op %q", req.Op)
	}
}

// collection snapshots a dataset as (sorted global indices, Collection
// with partitions in that order) — the shape every partitioned op works
// on.
func (w *Worker) collection(name string) ([]int, *engine.Collection, error) {
	return w.source(name, nil)
}

// source snapshots a dataset restricted to the given global partition
// indices (nil = everything resident, the fast path). A requested index
// that is not resident is an error — lineage replay must have merged
// the parent partitions in first.
func (w *Worker) source(name string, only []int) ([]int, *engine.Collection, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ds, ok := w.data[name]
	if !ok {
		return nil, nil, fmt.Errorf("dist: no dataset %q", name)
	}
	var idx []int
	if only != nil {
		idx = append([]int(nil), only...)
		sort.Ints(idx)
		for _, gi := range idx {
			if _, ok := ds[gi]; !ok {
				return nil, nil, fmt.Errorf("dist: dataset %q: partition %d not resident", name, gi)
			}
		}
	} else {
		idx = make([]int, 0, len(ds))
		for i := range ds {
			idx = append(idx, i)
		}
		sort.Ints(idx)
	}
	parts := make([][]any, len(idx))
	for i, gi := range idx {
		parts[i] = ds[gi]
	}
	return idx, engine.FromPartitions(parts), nil
}

// putParts writes a computed collection back under the same global
// partition indices its input held. merge keeps whatever else the
// dataset already holds (the lineage-replay path); otherwise the
// dataset is replaced wholesale, which is what makes unscoped op
// retries idempotent.
func (w *Worker) putParts(name string, idx []int, coll *engine.Collection, merge bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ds := w.data[name]
	if ds == nil || !merge {
		ds = make(map[int][]any, len(idx))
		w.data[name] = ds
	}
	for i, gi := range idx {
		ds[gi] = coll.Partition(i)
	}
}

// serveRoute registers a route on the worker's serving replica from a
// registry artifact, via the binder registered for kind. Re-registering
// the same artifact is a no-op success — a lost wire response must be
// re-sendable — while a different artifact on a registered route is
// rejected (deploys of new artifacts go over HTTP).
func (w *Worker) serveRoute(kind, route, ref string) (string, error) {
	if w.srv == nil {
		return "", fmt.Errorf("dist: worker has no HTTP replica (start with HTTPListen)")
	}
	binder, ok := lookupServeKind(kind)
	if !ok {
		return "", fmt.Errorf("dist: no serve kind %q registered in this worker", kind)
	}
	w.mu.Lock()
	if cur, served := w.routes[route]; served {
		w.mu.Unlock()
		if cur == ref {
			return w.HTTPAddr(), nil
		}
		return w.HTTPAddr(), fmt.Errorf("dist: route %q already served (deploy new artifacts over HTTP)", route)
	}
	if w.store == nil {
		if w.regDir == "" {
			w.mu.Unlock()
			return "", fmt.Errorf("dist: worker has no registry dir (serve needs one)")
		}
		store, err := registry.Open(w.regDir)
		if err != nil {
			w.mu.Unlock()
			return "", fmt.Errorf("dist: open registry: %w", err)
		}
		w.store = store
	}
	store := w.store
	w.mu.Unlock()

	if err := binder(w.srv, store, route, ref); err != nil {
		return "", err
	}
	w.mu.Lock()
	w.routes[route] = ref
	w.mu.Unlock()
	return w.HTTPAddr(), nil
}

// replicaHTTP fronts the replica's serve.Server with one interception:
// a POST deploy for a route this worker has never registered, carrying a
// "kind" field, bootstrap-registers the route from the artifact via the
// kind's ServeBinder. That is how a worker that restarted empty (fresh
// serve.Server, no routes) is re-admitted by the router's rejoin
// redeploy instead of serving 404s until a manual wire deploy.
func (w *Worker) replicaHTTP(rw http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		if rest, ok := strings.CutPrefix(strings.TrimSuffix(r.URL.Path, "/"), "/routes/"); ok {
			if name, action, _ := strings.Cut(rest, "/"); action == "deploy" && !w.hasRoute(name) {
				w.bootstrapDeploy(rw, r, name)
				return
			}
		}
	}
	w.srv.ServeHTTP(rw, r)
}

func (w *Worker) hasRoute(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.routes[name]
	return ok
}

// bootstrapDeploy registers an unknown route from a deploy body that
// names its serve kind; without a kind the request falls through to the
// serve.Server for its ordinary 404.
func (w *Worker) bootstrapDeploy(rw http.ResponseWriter, r *http.Request, name string) {
	raw, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, 1<<20))
	if err != nil {
		http.Error(rw, `{"error":"deploy body unreadable"}`, http.StatusBadRequest)
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(raw))
	var body struct {
		Artifact string `json:"artifact"`
		Kind     string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &body); err != nil || body.Kind == "" || body.Artifact == "" {
		w.srv.ServeHTTP(rw, r) // not a bootstrap deploy; let serve answer
		return
	}
	if _, err := w.serveRoute(body.Kind, name, body.Artifact); err != nil {
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(rw).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck // best-effort error body
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(map[string]string{ //nolint:errcheck // best-effort body
		"route": name, "artifact": body.Artifact, "status": "registered",
	})
}

// ServeBinder registers one route of a known pipeline shape on a
// replica server from a stored artifact — the typed glue (record types +
// codec) the type-erased wire cannot carry.
type ServeBinder func(srv *serve.Server, store serve.ArtifactStore, route, ref string) error

var (
	serveKindsMu sync.RWMutex
	serveKinds   = map[string]ServeBinder{}
)

// RegisterServeKind makes a pipeline shape servable by name via the
// wire serve op. cmd/keyworker registers "text"
// (Fitted[string, []float64] + serve.TextCodec); binaries embedding
// workers register their own kinds the same way.
func RegisterServeKind(kind string, b ServeBinder) {
	serveKindsMu.Lock()
	defer serveKindsMu.Unlock()
	serveKinds[kind] = b
}

func lookupServeKind(kind string) (ServeBinder, bool) {
	serveKindsMu.RLock()
	defer serveKindsMu.RUnlock()
	b, ok := serveKinds[kind]
	return b, ok
}
