package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"keystoneml/keystone"
	"keystoneml/keystone/registry"
	"keystoneml/keystone/serve"
)

// TestRouterRejoinRedeploy: a replica that dies and restarts EMPTY (a
// fresh worker process on the same port, no routes registered) must be
// re-admitted by the router's health loop with the route's live artifact
// re-shipped, so it rejoins serving — not 404ing its keyspace.
func TestRouterRejoinRedeploy(t *testing.T) {
	regDir := t.TempDir()
	reg, err := registry.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	train := keystone.SyntheticReviews(80, 1)
	fitted, err := keystone.TextPipeline(keystone.TextConfig{NumFeatures: 150, Iterations: 3}).
		Fit(context.Background(), train.Records, train.Labels,
			keystone.WithOptimizerLevel(keystone.LevelPipeline),
			keystone.WithSampleSizes(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := keystone.Encode(fitted)
	if err != nil {
		t.Fatal(err)
	}
	id, err := reg.Put(blob)
	if err != nil {
		t.Fatal(err)
	}
	RegisterServeKind("rejoin-text", func(srv *serve.Server, store serve.ArtifactStore, route, ref string) error {
		_, err := serve.RegisterArtifact[string, []float64](srv, route, store, ref, serve.TextCodec{})
		return err
	})

	cl, workers := startCluster(t, 2, WorkerOptions{HTTPListen: "127.0.0.1:0", RegistryDir: regDir})
	replicas, err := cl.ServeRoute("rejoin-text", "text", id)
	if err != nil {
		t.Fatalf("serve route: %v", err)
	}

	router, err := NewRouter(RouterOptions{Replicas: replicas, HealthInterval: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	router.TrackRoute("text", "rejoin-text", id)

	doc := train.Records[0]
	want, err := fitted.Transform(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := predictViaRouter(t, router, doc); !reflect.DeepEqual(got, want) {
		t.Fatalf("baseline router prediction %v != direct %v", got, want)
	}

	// Kill replica 0 and wait for the router to mark it down.
	httpAddr := strings.TrimPrefix(replicas[0], "http://")
	workers[0].Close()
	waitReplicaHealth(t, router, replicas[0], false)

	// Restart an EMPTY worker on the same HTTP port: no ServeRoute, no
	// routes — only the router's rejoin redeploy can make it serve. The
	// bind can race the OS releasing the port, so retry briefly.
	var fresh *Worker
	deadline := time.Now().Add(5 * time.Second)
	for {
		fresh, err = StartWorker(WorkerOptions{Listen: "127.0.0.1:0", HTTPListen: httpAddr, RegistryDir: regDir})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", httpAddr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Cleanup(func() { fresh.Close() })

	// The health loop must redeploy before readmitting: once the replica
	// is marked healthy again, it serves the live artifact.
	waitReplicaHealth(t, router, replicas[0], true)
	resp, err := http.Post(replicas[0]+"/routes/text/predict", "application/json",
		strings.NewReader(`{"text":`+jsonString(doc)+`}`))
	if err != nil {
		t.Fatalf("rejoined replica unreachable: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rejoined replica answered %s for a tracked route", resp.Status)
	}
	if got := predictViaRouter(t, router, doc); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-rejoin prediction %v != direct %v", got, want)
	}
}

// waitReplicaHealth polls the router's health marks until the replica at
// addr reports the wanted health, failing after a bounded wait (no
// fixed sleeps — the poll ends the moment the health loop flips).
func waitReplicaHealth(t *testing.T, rt *Router, addr string, want bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, rs := range rt.Replicas() {
			if rs.Addr == addr && rs.Healthy == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s never became healthy=%v", addr, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// jsonString quotes a document for a hand-built JSON body.
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
