package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"keystoneml/keystone/serve"
)

// predictViaRouter posts one document through the router and returns the
// score vector.
func predictViaRouter(t *testing.T, rt *Router, doc string) []float64 {
	t.Helper()
	got := predictViaRouterMaybe(rt, doc)
	if got == nil {
		t.Fatal("router prediction failed")
	}
	return got
}

// predictViaRouterMaybe is predictViaRouter without the fatal: nil on
// any failure, for polling during failover.
func predictViaRouterMaybe(rt *Router, doc string) []float64 {
	body, _ := json.Marshal(map[string]string{"text": doc})
	req := httptest.NewRequest(http.MethodPost, "/routes/text/predict", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil
	}
	var resp struct {
		Scores []float64 `json:"scores"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || len(resp.Scores) == 0 {
		return nil
	}
	return resp.Scores
}

// routedReplica returns the replica address the router's ring assigns to
// an affinity key right now.
func routedReplica(t *testing.T, rt *Router, key string) string {
	t.Helper()
	rep, _ := rt.pick([]byte(key))
	if rep == nil {
		t.Fatal("no live replica for key")
	}
	return rep.addr
}

// getRolloutState reads one replica's rollout state directly.
func getRolloutState(t *testing.T, addr, route string) serve.RolloutState {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/routes/%s/rollout", addr, route))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollout GET %s: %s: %s", addr, resp.Status, raw)
	}
	var st serve.RolloutState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("rollout state decode: %v (%s)", err, raw)
	}
	return st
}
