package dist

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"keystoneml/keystone"
)

// The chaos suite: deterministic fault injection (FaultPlan) driving the
// coordinator's failure paths — redial-and-resend for transient faults,
// partition reassignment plus lineage replay for worker deaths — and
// asserting the surviving fit is bit-identical to the single-process
// oracle at every injection point.

// chaosConfig is the small text pipeline every chaos test fits: big
// enough to exercise load, apply, zip/alias gathers, and estimator
// fetches; small enough to re-fit once per injection point.
func chaosPipeline() *keystone.Pipeline[string, []float64] {
	return keystone.TextPipeline(keystone.TextConfig{NumFeatures: 100, Iterations: 3})
}

var (
	chaosOnce   sync.Once
	chaosTrain  keystone.Dataset[string]
	chaosTest   keystone.Dataset[string]
	chaosOracle [][]float64
	chaosErr    error
)

// chaosSetup fits the single-process oracle once (all chaos runs compare
// against the same predictions).
func chaosSetup(t *testing.T) {
	t.Helper()
	chaosOnce.Do(func() {
		chaosTrain = keystone.SyntheticReviews(60, 1)
		chaosTest = keystone.SyntheticReviews(10, 2)
		local, err := chaosPipeline().Fit(context.Background(), chaosTrain.Records, chaosTrain.Labels,
			keystone.WithOptimizerLevel(keystone.LevelPipeline),
			keystone.WithSampleSizes(16, 32),
			keystone.WithPartitions(4),
			keystone.WithWorkers(1))
		if err != nil {
			chaosErr = err
			return
		}
		for _, doc := range chaosTest.Records {
			pred, err := local.Transform(context.Background(), doc)
			if err != nil {
				chaosErr = err
				return
			}
			chaosOracle = append(chaosOracle, pred)
		}
	})
	if chaosErr != nil {
		t.Fatalf("oracle fit: %v", chaosErr)
	}
}

// chaosFit runs one distributed fit of the chaos pipeline over a fresh
// 2-worker cluster with the given fault plan armed and tight failure
// timeouts, returning the fitted pipeline, the report, and the workers.
func chaosFit(t *testing.T, plan *FaultPlan) (*keystone.Fitted[string, []float64], *Report, error) {
	t.Helper()
	workers := make([]*Worker, 2)
	addrs := make([]string, 2)
	for i := range workers {
		w, err := StartWorker(WorkerOptions{Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		t.Cleanup(func() { w.Close() })
		workers[i] = w
		addrs[i] = w.Addr()
	}
	if plan != nil && plan.OnSever == nil {
		// Default sever hook: kill the worker itself, so a severed
		// connection is real partition loss, not just a torn socket.
		plan.OnSever = func(i int) { workers[i].Close() }
	}
	cl, err := ConnectWith(ClusterOptions{
		Addrs:        addrs,
		OpTimeout:    2 * time.Second,
		DialRetries:  1,
		RetryBackoff: 5 * time.Millisecond,
		Fault:        plan,
	})
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	fitted, rep, err := Fit(context.Background(), cl, chaosPipeline(), chaosTrain.Records, chaosTrain.Labels, FitOptions{
		Level:       keystone.LevelPipeline,
		SampleSizes: [2]int{16, 32},
		Partitions:  4,
	})
	return fitted, rep, err
}

// assertOracleMatch checks the fitted pipeline predicts bit-identically
// (exact float equality) to the single-process oracle on every test doc.
func assertOracleMatch(t *testing.T, fitted *keystone.Fitted[string, []float64]) {
	t.Helper()
	for i, doc := range chaosTest.Records {
		got, err := fitted.Transform(context.Background(), doc)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, chaosOracle[i]) {
			t.Fatalf("doc %d: recovered prediction %v != oracle %v", i, got, chaosOracle[i])
		}
	}
}

// TestFaultPlanObserve pins the injection semantics the chaos suite
// rests on: per-(op, worker) frame counting, any-worker and any-op
// aggregation, exact-ordinal firing, and fire-once.
func TestFaultPlanObserve(t *testing.T) {
	plan := NewFaultPlan(
		FaultRule{Op: "apply", Worker: 0, Nth: 2, Mode: FaultDrop},
		FaultRule{Op: "load", Worker: -1, Nth: 3, Mode: FaultDelay, Delay: time.Millisecond},
	)
	if act := plan.observe(0, "apply"); act.mode != 0 {
		t.Fatalf("frame 1 tripped %v", act.mode)
	}
	if act := plan.observe(1, "apply"); act.mode != 0 {
		t.Fatal("worker-1 frame tripped a worker-0 rule")
	}
	if act := plan.observe(0, "apply"); act.mode != FaultDrop {
		t.Fatal("2nd apply frame to worker 0 did not trip the drop rule")
	}
	if act := plan.observe(0, "apply"); act.mode != 0 {
		t.Fatal("rule fired twice")
	}
	// Any-worker rule counts across workers: load frames to 0, 1, 0.
	plan.observe(0, "load")
	plan.observe(1, "load")
	if act := plan.observe(0, "load"); act.mode != FaultDelay {
		t.Fatal("3rd load frame across workers did not trip the any-worker rule")
	}
	if got := plan.FrameCount("apply", 0); got != 3 {
		t.Fatalf("FrameCount(apply, 0) = %d, want 3", got)
	}
	if got := plan.FrameCount("load", -1); got != 3 {
		t.Fatalf("FrameCount(load, -1) = %d, want 3", got)
	}
	ev := plan.Events()
	if len(ev) != 2 || ev[0].Mode != FaultDrop || ev[1].Mode != FaultDelay {
		t.Fatalf("events = %+v", ev)
	}
}

// TestChaosKillAtEveryPassBoundary is the tentpole acceptance test: a
// counting-only run first maps every wire frame the fit sends to worker
// 0, then one fresh fit per (op kind, frame ordinal) severs that exact
// frame AND kills the worker behind it. Every run must complete via
// reassignment + lineage replay and predict bit-identically to the
// single-process oracle.
func TestChaosKillAtEveryPassBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep re-fits once per injection point")
	}
	chaosSetup(t)

	// Discovery: an inert plan counts the frames of a clean fit.
	counter := NewFaultPlan()
	counter.OnSever = func(int) {} // never fires; suppresses the kill default
	fitted, rep, err := chaosFit(t, counter)
	if err != nil {
		t.Fatalf("clean fit under counting plan: %v", err)
	}
	if rep.Recoveries != 0 || rep.ReplayedPartitions != 0 {
		t.Fatalf("clean run reported recoveries: %+v", rep)
	}
	assertOracleMatch(t, fitted)

	kinds := []string{opLoad, opApply, opZip, opAlias, opFetch}
	total := 0
	for _, kind := range kinds {
		n := counter.FrameCount(kind, 0)
		total += n
		t.Logf("frames to worker 0: %-6s %d", kind, n)
	}
	if total == 0 {
		t.Fatal("discovery run sent no frames to worker 0")
	}

	for _, kind := range kinds {
		frames := counter.FrameCount(kind, 0)
		for nth := 1; nth <= frames; nth++ {
			kind, nth := kind, nth
			t.Run(kind+"/"+itoa(nth), func(t *testing.T) {
				plan := NewFaultPlan(FaultRule{Op: kind, Worker: 0, Nth: nth, Mode: FaultSever})
				fitted, rep, err := chaosFit(t, plan)
				if err != nil {
					t.Fatalf("fit did not survive killing worker 0 at %s frame %d: %v", kind, nth, err)
				}
				if ev := plan.Events(); len(ev) != 1 {
					t.Fatalf("injection did not fire exactly once: %+v", ev)
				}
				if rep.Recoveries < 1 {
					t.Fatalf("report shows no recovery after a kill: %+v", rep)
				}
				// A kill at the initial load recovers by re-running the
				// load itself — no other dataset exists to replay yet.
				if kind != opLoad && rep.ReplayedPartitions < 1 {
					t.Fatalf("recovery replayed no partitions: %+v", rep)
				}
				assertOracleMatch(t, fitted)
			})
		}
	}
}

// TestFaultDropAbsorbedByRetry: a dropped frame is a transient fault —
// the bounded redial-and-resend budget must absorb it without declaring
// the worker dead, and the result must still match the oracle exactly.
func TestFaultDropAbsorbedByRetry(t *testing.T) {
	chaosSetup(t)
	plan := NewFaultPlan(FaultRule{Op: opApply, Worker: 0, Nth: 1, Mode: FaultDrop})
	plan.OnSever = func(int) {}
	fitted, rep, err := chaosFit(t, plan)
	if err != nil {
		t.Fatalf("fit did not absorb a dropped frame: %v", err)
	}
	if len(plan.Events()) != 1 {
		t.Fatalf("drop did not fire: %+v", plan.Events())
	}
	if rep.Recoveries != 0 {
		t.Fatalf("transient drop escalated to a recovery: %+v", rep)
	}
	assertOracleMatch(t, fitted)
}

// TestFaultDelayTripsDeadline: an injected delay longer than the
// per-call deadline looks exactly like a hung worker — the deadline
// expires, the call is redialed and re-sent, and the worker stays live.
func TestFaultDelayTripsDeadline(t *testing.T) {
	chaosSetup(t)
	workers := make([]*Worker, 2)
	addrs := make([]string, 2)
	for i := range workers {
		w, err := StartWorker(WorkerOptions{Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers[i] = w
		addrs[i] = w.Addr()
	}
	plan := NewFaultPlan(FaultRule{Op: opApply, Worker: 0, Nth: 1, Mode: FaultDelay, Delay: 400 * time.Millisecond})
	cl, err := ConnectWith(ClusterOptions{
		Addrs:        addrs,
		OpTimeout:    100 * time.Millisecond,
		DialRetries:  2,
		RetryBackoff: 5 * time.Millisecond,
		Fault:        plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	fitted, rep, err := Fit(context.Background(), cl, chaosPipeline(), chaosTrain.Records, chaosTrain.Labels, FitOptions{
		Level:       keystone.LevelPipeline,
		SampleSizes: [2]int{16, 32},
		Partitions:  4,
	})
	if err != nil {
		t.Fatalf("fit did not absorb the stalled call: %v", err)
	}
	if cl.LiveWorkers() != 2 {
		t.Fatalf("stalled-then-recovered worker was declared dead (%d live)", cl.LiveWorkers())
	}
	if rep.Recoveries != 0 {
		t.Fatalf("stall escalated to a recovery: %+v", rep)
	}
	assertOracleMatch(t, fitted)
}

// TestChaosAllWorkersDead kills worker 0 mid-fit, then worker 1 a few
// frames later with nothing left to fail over to — the fit must fail
// cleanly with no live workers rather than hang or panic.
func TestChaosAllWorkersDead(t *testing.T) {
	chaosSetup(t)
	var workers []*Worker
	plan := NewFaultPlan(
		FaultRule{Op: opApply, Worker: 0, Nth: 1, Mode: FaultSever},
		FaultRule{Op: "", Worker: 1, Nth: 12, Mode: FaultSever},
	)
	plan.OnSever = func(i int) { workers[i].Close() }
	addrs := make([]string, 2)
	workers = make([]*Worker, 2)
	for i := range workers {
		w, err := StartWorker(WorkerOptions{Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers[i] = w
		addrs[i] = w.Addr()
	}
	cl, err := ConnectWith(ClusterOptions{
		Addrs:        addrs,
		OpTimeout:    time.Second,
		DialRetries:  1,
		RetryBackoff: 5 * time.Millisecond,
		Fault:        plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	_, _, err = Fit(context.Background(), cl, chaosPipeline(), chaosTrain.Records, chaosTrain.Labels, FitOptions{
		Level:       keystone.LevelPipeline,
		SampleSizes: [2]int{16, 32},
		Partitions:  4,
	})
	if err == nil {
		t.Fatal("fit succeeded with every worker dead")
	}
	if cl.LiveWorkers() != 0 {
		t.Fatalf("%d workers still live after killing both", cl.LiveWorkers())
	}
}

// TestFaultEventsReplayable: two fits under identical plans fire the
// identical event sequence — the property that makes a chaos failure
// reproducible from its logged plan.
func TestFaultEventsReplayable(t *testing.T) {
	chaosSetup(t)
	run := func() []FaultEvent {
		plan := NewFaultPlan(
			FaultRule{Op: opApply, Worker: 0, Nth: 2, Mode: FaultDrop},
			FaultRule{Op: opFetch, Worker: 1, Nth: 1, Mode: FaultDrop},
		)
		plan.OnSever = func(int) {}
		fitted, _, err := chaosFit(t, plan)
		if err != nil {
			t.Fatalf("fit under replayable plan: %v", err)
		}
		assertOracleMatch(t, fitted)
		return plan.Events()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical plans fired different events:\n  run 1: %+v\n  run 2: %+v", a, b)
	}
}

// itoa avoids strconv for tiny positive subtest ordinals.
func itoa(n int) string {
	if n >= 10 {
		return itoa(n/10) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}
