// Package dist is the distributed tier: a coordinator that fits
// pipelines data-parallel across worker processes holding
// engine.Collection partitions, and a consistent-hashing Router that
// fronts N serve.Server replicas booted from one registry artifact id.
//
// The wire protocol is deliberately lean — length-prefixed gob frames
// over TCP, one self-contained request or response per frame — and
// reuses the artifact-persistence codecs for everything interesting:
// operators cross the wire as (state kind, state bytes) pairs exactly as
// they are persisted on disk (core.EncodeOp / core.DecodeOp), so any
// operator a pipeline can Save is an operator a worker can execute.
// Records cross inside []any partitions and therefore need their
// concrete types gob-registered on both ends; RegisterRecordType extends
// the built-in set (strings, dense and sparse vectors, token lists,
// term-frequency maps — the evaluation pipelines' record types).
//
// Framing: a frame is a big-endian uint32 payload length followed by
// that many bytes of gob, produced by a fresh encoder per frame. Fresh
// encoders cost a re-sent type description per frame but make failure
// semantics clean: a torn or corrupt frame kills one request, not the
// decoder stream, and either side can drop the connection at any frame
// boundary. Workers answer strictly in request order per connection;
// the coordinator serializes in-flight requests per connection and
// fans out across workers with one connection each.
package dist

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"keystoneml/internal/linalg"
)

// maxFrame bounds a single frame (a full dataset partition set can ride
// one frame, so the cap is generous; it exists to fail fast on a
// corrupt length prefix, not to limit payloads).
const maxFrame = 1 << 30

// Typed frame-decoding failures. Every malformed input readFrame can
// meet maps onto one of these (via errors.Is), so callers distinguish
// protocol damage from ordinary I/O without string matching — and the
// decoder never panics or allocates past the cap on garbage input.
var (
	// ErrFrameTooLarge: the length prefix exceeds the 1 GiB cap —
	// almost always a corrupt or misaligned prefix, not a real payload.
	ErrFrameTooLarge = errors.New("dist: frame length exceeds 1 GiB cap")
	// ErrFrameTruncated: the stream ended inside a frame (torn header
	// or payload shorter than its prefix).
	ErrFrameTruncated = errors.New("dist: truncated frame")
	// ErrFrameCorrupt: the payload arrived whole but is not a valid gob
	// message for the expected type.
	ErrFrameCorrupt = errors.New("dist: corrupt frame payload")
)

// Wire operation names (request.Op).
const (
	opPing  = "ping"  // liveness + discovery (returns the worker's HTTP addr)
	opLoad  = "load"  // store the request's partitions under Dataset
	opApply = "apply" // map a decoded operator over Source into Dataset
	opZip   = "zip"   // gather join: concat Source and Source2 features into Dataset
	opAlias = "alias" // bind Dataset to Source's partitions (single-branch gather)
	opFetch = "fetch" // return Dataset's partitions
	opFree  = "free"  // drop Dataset
	opServe = "serve" // register Route on the worker's HTTP replica from Artifact
	opStats = "stats" // resident datasets and record counts
)

// partition is one globally-indexed slice of a distributed collection.
// Index is the partition's position in the full collection, preserved
// across every operation so fetches reassemble in exact order and zips
// align — the invariant behind bit-identical distributed fits.
type partition struct {
	Index   int
	Records []any
}

// request is the coordinator→worker message; Op selects which fields
// are meaningful.
type request struct {
	Op      string
	Dataset string      // result (load/apply/zip/alias) or target (fetch/free)
	Source  string      // input dataset
	Source2 string      // right input (zip)
	Parts   []partition // payload (load)
	OpKind  string      // operator state kind (apply), per core.EncodeOp
	OpState []byte      // operator state bytes (apply)
	Route   string      // serve: route name
	Kind    string      // serve: registered codec kind
	Ref     string      // serve: registry artifact id/tag/prefix
	// Only restricts apply/zip/alias to these global partition indices
	// of the source dataset(s), and switches the result from
	// replace-dataset to merge-partitions semantics — the lineage-replay
	// mode: recovery rebuilds exactly the lost partitions on their new
	// owners without touching the survivors' work. For load it marks the
	// shipped partitions as a merge instead of a wholesale replacement.
	// Nil (the fast path) means "every partition this worker holds",
	// replacing dst.
	Only []int
}

// response is the worker→coordinator message.
type response struct {
	Err      string
	Parts    []partition    // fetch
	Counts   map[string]int // stats: dataset -> resident record count
	HTTPAddr string         // ping/serve: replica base address ("" = no replica)
}

// writeFrame gob-encodes v with a fresh encoder and writes it as one
// length-prefixed frame.
func writeFrame(w io.Writer, v any) error {
	var buf []byte
	{
		bw := &sliceWriter{}
		if err := gob.NewEncoder(bw).Encode(v); err != nil {
			return fmt.Errorf("dist: encode frame: %w", err)
		}
		buf = bw.b
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame into v. A clean EOF at a
// frame boundary comes back as io.EOF; anything torn, oversized, or
// undecodable maps onto the typed Err* sentinels above.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF // connection closed between frames
		}
		return fmt.Errorf("%w: header: %v", ErrFrameTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("%w: length prefix %d", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if m, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("%w: got %d of %d payload bytes: %v", ErrFrameTruncated, m, n, err)
	}
	if err := gob.NewDecoder(&sliceReader{b: buf}).Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
	}
	return nil
}

// sliceWriter/sliceReader avoid bytes.Buffer's unused capacity games for
// the simple encode-whole/decode-whole frames used here.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

type sliceReader struct {
	b []byte
	i int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// RegisterRecordType registers a concrete record type for wire
// transport (records travel as []any inside partitions, so gob needs
// the concrete types on both ends). The evaluation pipelines' record
// types are pre-registered; pipelines with custom record types call
// this in both the coordinator and worker binaries.
func RegisterRecordType(v any) { gob.Register(v) }

func init() {
	// The record types of the built-in evaluation pipelines: documents,
	// token/n-gram lists, term-frequency maps, sparse featurizations,
	// dense feature/label vectors.
	gob.Register("")
	gob.Register([]string(nil))
	gob.Register(map[string]float64{})
	gob.Register([]float64(nil))
	gob.Register(&linalg.SparseVector{})
}
