package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"keystoneml/keystone/serve"
)

// RouterOptions configures a replica router.
type RouterOptions struct {
	// Replicas are the serve.Server base URLs fronted by the router
	// (typically Cluster.ServeRoute's return value).
	Replicas []string
	// VNodes is the number of ring positions per replica (default 64 —
	// enough that losing one replica spreads its keyspace roughly evenly
	// over the survivors).
	VNodes int
	// HealthInterval is the probe period for the background health loop
	// (default 500ms; <0 disables probing, replicas are then only marked
	// down by forwarding failures).
	HealthInterval time.Duration
	// Client is the forwarding HTTP client (default: a client with a 30s
	// timeout).
	Client *http.Client
}

// Router fronts N serving replicas with consistent hashing: a request's
// affinity key (the X-Affinity-Key header, else the request body) maps
// to a stable ring position, so repeat predictions for the same entity
// land on the same replica's warm state. Replicas that fail probes or
// forwards are marked down and their keyspace spills to the next live
// ring position — degraded but serving — until they probe healthy again.
//
// Router is an http.Handler: every request path (predict, stats, deploy,
// rollout) forwards to the selected replica. Coordinated actions use
// DeployAll and PushRollout, which fan the same artifact reference or
// rollout state to every live replica.
type Router struct {
	replicas []*replica
	ring     []ringSlot // sorted by hash
	client   *http.Client

	mu      sync.Mutex
	tracked map[string]trackedRoute // route -> live artifact, for rejoin redeploys

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// trackedRoute is the router's record of what a route currently serves:
// the serve kind (so an empty, restarted replica can bootstrap-register
// the route) and the live artifact reference.
type trackedRoute struct {
	kind string
	ref  string
}

type replica struct {
	addr string
	up   atomic.Bool
}

type ringSlot struct {
	hash uint32
	idx  int // index into replicas
}

// NewRouter builds the ring and starts the health loop.
func NewRouter(opts RouterOptions) (*Router, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("dist: router needs at least one replica")
	}
	vnodes := opts.VNodes
	if vnodes <= 0 {
		vnodes = 64
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	rt := &Router{
		client:  client,
		tracked: make(map[string]trackedRoute),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i, addr := range opts.Replicas {
		rep := &replica{addr: addr}
		rep.up.Store(true)
		rt.replicas = append(rt.replicas, rep)
		for v := 0; v < vnodes; v++ {
			rt.ring = append(rt.ring, ringSlot{hash: hash32(fmt.Sprintf("%s#%d", addr, v)), idx: i})
		}
	}
	sort.Slice(rt.ring, func(i, j int) bool { return rt.ring[i].hash < rt.ring[j].hash })
	interval := opts.HealthInterval
	if interval == 0 {
		interval = 500 * time.Millisecond
	}
	if interval > 0 {
		go rt.healthLoop(interval)
	} else {
		close(rt.done)
	}
	return rt, nil
}

// Close stops the health loop (in-flight forwards complete).
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}

// ReplicaStatus is one replica's address and live health mark.
type ReplicaStatus struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
}

// Replicas reports the replica set and current health, in ring-build
// order.
func (rt *Router) Replicas() []ReplicaStatus {
	out := make([]ReplicaStatus, len(rt.replicas))
	for i, r := range rt.replicas {
		out[i] = ReplicaStatus{Addr: r.addr, Healthy: r.up.Load()}
	}
	return out
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never errors
	return h.Sum32()
}

// pick walks the ring from key's position to the first live replica;
// (nil, -1) when every replica is down.
func (rt *Router) pick(key []byte) (*replica, int) {
	h := fnv.New32a()
	h.Write(key) //nolint:errcheck // fnv never errors
	kh := h.Sum32()
	start := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= kh })
	tried := make(map[int]bool, len(rt.replicas))
	for i := 0; i < len(rt.ring); i++ {
		slot := rt.ring[(start+i)%len(rt.ring)]
		if tried[slot.idx] {
			continue
		}
		tried[slot.idx] = true
		if rt.replicas[slot.idx].up.Load() {
			return rt.replicas[slot.idx], slot.idx
		}
		if len(tried) == len(rt.replicas) {
			break
		}
	}
	return nil, -1
}

// ServeHTTP forwards the request to the replica owning its affinity key.
// A transport-level failure marks the replica down and retries the next
// live one, so a killed replica costs its clients one internal retry,
// not an error.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, `{"error":"router: read body"}`, http.StatusBadRequest)
		return
	}
	key := []byte(r.Header.Get("X-Affinity-Key"))
	if len(key) == 0 {
		key = body
	}
	for attempt := 0; attempt < len(rt.replicas); attempt++ {
		rep, _ := rt.pick(key)
		if rep == nil {
			break
		}
		resp, err := rt.forward(r, rep.addr, body)
		if err != nil {
			// The replica is gone mid-request; fail it over.
			rep.up.Store(false)
			continue
		}
		relay(w, resp)
		return
	}
	http.Error(w, `{"error":"router: no live replicas"}`, http.StatusServiceUnavailable)
}

func (rt *Router) forward(r *http.Request, addr string, body []byte) (*http.Response, error) {
	url := addr + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return rt.client.Do(req)
}

func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client disconnects are its problem
}

// healthLoop probes every replica's /healthz and flips health marks both
// ways: a down replica that answers again rejoins the ring — after the
// router re-ships it every tracked route's live artifact, so a replica
// that restarted empty (a fresh process with no routes) comes back
// serving, not 404ing its keyspace.
func (rt *Router) healthLoop(interval time.Duration) {
	defer close(rt.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		for _, rep := range rt.replicas {
			resp, err := rt.client.Get(rep.addr + "/healthz")
			ok := err == nil && resp.StatusCode == http.StatusOK
			if resp != nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
				resp.Body.Close()
			}
			if ok && !rep.up.Load() {
				// Down -> up transition: redeploy before readmitting, so
				// the ring never routes to a replica missing its routes.
				rt.redeploy(rep)
			}
			rep.up.Store(ok)
		}
	}
}

// TrackRoute records what a route is currently serving so the health
// loop can re-ship it to replicas that rejoin after a restart. Callers
// that deploy via Cluster.ServeRoute track the same (kind, ref) here;
// DeployAll keeps the reference current afterwards.
func (rt *Router) TrackRoute(route, kind, ref string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.tracked[route] = trackedRoute{kind: kind, ref: ref}
}

// trackedSnapshot copies the tracked-route table.
func (rt *Router) trackedSnapshot() map[string]trackedRoute {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string]trackedRoute, len(rt.tracked))
	for k, v := range rt.tracked {
		out[k] = v
	}
	return out
}

// redeploy posts every tracked route's live artifact to one replica —
// the rejoin path. The payload carries the serve kind, which registered
// routes ignore and empty (restarted) replicas use to bootstrap-register
// the route from the artifact. Best-effort: a failed redeploy leaves the
// replica serving whatever it has; the next predict either works or
// marks it down again.
func (rt *Router) redeploy(rep *replica) {
	for route, tr := range rt.trackedSnapshot() {
		body, err := json.Marshal(map[string]string{"artifact": tr.ref, "kind": tr.kind})
		if err != nil {
			continue
		}
		resp, err := rt.client.Post(rep.addr+"/routes/"+route+"/deploy", "application/json", bytes.NewReader(body))
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
		resp.Body.Close()
	}
}

// DeployAll posts one registry artifact reference to every live
// replica's deploy endpoint, the sharded equivalent of a single server's
// versioned hot swap: after it returns nil, every live replica serves
// the same artifact id. A tracked route's record is updated, so later
// rejoin redeploys ship the new artifact, not the one first tracked.
func (rt *Router) DeployAll(ctx context.Context, route, ref string) error {
	payload := map[string]any{"artifact": ref}
	rt.mu.Lock()
	tr, tracked := rt.tracked[route]
	rt.mu.Unlock()
	if tracked {
		payload["kind"] = tr.kind
	}
	if err := rt.postAll(ctx, "/routes/"+route+"/deploy", payload); err != nil {
		return err
	}
	if tracked {
		rt.TrackRoute(route, tr.kind, ref)
	}
	return nil
}

// PushRollout propagates shared rollout state — canary fraction,
// admission caps — from the coordinator to every live replica, keeping
// the shards' admission behaviour in lockstep.
func (rt *Router) PushRollout(ctx context.Context, route string, s serve.RolloutState) error {
	return rt.postAll(ctx, "/routes/"+route+"/rollout", s)
}

func (rt *Router) postAll(ctx context.Context, path string, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	live := 0
	for _, rep := range rt.replicas {
		if !rep.up.Load() {
			continue
		}
		live++
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.addr+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(req)
		if err != nil {
			return fmt.Errorf("dist: replica %s: %w", rep.addr, err)
		}
		out, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("dist: replica %s: %s: %s", rep.addr, resp.Status, bytes.TrimSpace(out))
		}
	}
	if live == 0 {
		return fmt.Errorf("dist: no live replicas")
	}
	return nil
}
