package dist

import (
	"fmt"
	"sync"
	"time"
)

// FaultMode selects what happens to a matched wire frame.
type FaultMode int

// The three injectable failures, in increasing severity: a delay (the
// frame is sent late — slow network or a GC-paused worker), a drop (the
// frame is never sent and the call times out — a lost packet the
// bounded-retry layer should absorb by redialing), and a sever (the
// connection is torn down mid-conversation and, via OnSever, the worker
// itself can be killed — the full lineage-recovery path).
const (
	FaultDelay FaultMode = iota + 1
	FaultDrop
	FaultSever
)

// String names the mode for events and errors.
func (m FaultMode) String() string {
	switch m {
	case FaultDelay:
		return "delay"
	case FaultDrop:
		return "drop"
	case FaultSever:
		return "sever"
	default:
		return fmt.Sprintf("fault(%d)", int(m))
	}
}

// FaultRule arms one injection: the Nth frame of the given op kind sent
// to the given worker triggers Mode. Each rule fires exactly once.
type FaultRule struct {
	// Op is the wire op kind the rule watches ("apply", "load", "fetch",
	// ...); empty matches every op.
	Op string
	// Worker is the coordinator-side worker index the rule watches; -1
	// matches any worker. Rules with a concrete Worker are fully
	// deterministic (frames to one worker are serialized); Worker == -1
	// rules count frames across concurrently dispatched workers, so
	// which worker trips them can vary run to run.
	Worker int
	// Nth is the 1-based count of matching frames that triggers the
	// rule (0 is treated as 1).
	Nth int
	// Mode is what happens to the matched frame.
	Mode FaultMode
	// Delay is the injected latency for FaultDelay.
	Delay time.Duration
}

// FaultEvent records one fired injection, in firing order — the replay
// log: two runs with the same plan over the same call sequence produce
// the same events.
type FaultEvent struct {
	Rule   int    // index into the plan's rules
	Op     string // wire op of the matched frame
	Worker int    // worker the frame was headed to
	Frame  int    // per-(op, worker) frame ordinal that tripped the rule
	Mode   FaultMode
}

// FaultPlan is a deterministic fault-injection layer over the
// coordinator's wire transport: it watches every frame the Cluster
// sends, counts them per (op kind, worker), and fires the armed rules at
// exact frame ordinals. It is public test infrastructure — the chaos
// suite, the dist-smoke chaos leg, and the recovery benchmark all drive
// worker failure through it — and is inert when no rules are armed
// (counting only, so a plan can first map a fit's injection points and
// then be re-armed to hit each one).
//
// Attach a plan via ClusterOptions.Fault. Injection happens before the
// frame is written, inside the per-call retry loop, so a dropped frame
// exercises redial-and-resend and a severed frame exercises
// worker-death detection and lineage recovery.
type FaultPlan struct {
	// OnSever, when non-nil, is called (once, synchronously) with the
	// worker index each time a sever fires — the hook tests use to kill
	// the worker itself, turning a torn connection into real partition
	// loss. A nil OnSever severs only the connection: the worker
	// survives and the redial path re-admits it with its data intact.
	OnSever func(worker int)

	mu     sync.Mutex
	rules  []FaultRule
	fired  []bool
	counts map[frameKey]int
	events []FaultEvent
}

type frameKey struct {
	op     string
	worker int // -1 aggregates across workers (for Worker == -1 rules)
}

// NewFaultPlan arms a plan with the given rules. An empty rule set is a
// pure frame counter.
func NewFaultPlan(rules ...FaultRule) *FaultPlan {
	return &FaultPlan{
		rules:  rules,
		fired:  make([]bool, len(rules)),
		counts: make(map[frameKey]int),
	}
}

// faultAction is what the transport should do to the current frame.
type faultAction struct {
	mode  FaultMode // 0 = pass through
	delay time.Duration
}

// observe counts one outgoing frame and returns the action of the first
// unfired rule it trips.
func (p *FaultPlan) observe(worker int, op string) faultAction {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Four counters per frame: (op, worker) exact, plus the any-worker
	// and any-op aggregations rules may be keyed on.
	p.counts[frameKey{op, worker}]++
	p.counts[frameKey{op, -1}]++
	p.counts[frameKey{"", worker}]++
	p.counts[frameKey{"", -1}]++
	for i, r := range p.rules {
		if p.fired[i] {
			continue
		}
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Worker >= 0 && r.Worker != worker {
			continue
		}
		nth := r.Nth
		if nth <= 0 {
			nth = 1
		}
		if p.counts[frameKey{r.Op, r.Worker}] != nth {
			continue
		}
		p.fired[i] = true
		p.events = append(p.events, FaultEvent{
			Rule: i, Op: op, Worker: worker, Frame: nth, Mode: r.Mode,
		})
		return faultAction{mode: r.Mode, delay: r.Delay}
	}
	return faultAction{}
}

// FrameCount returns how many frames of op kind op have been sent to
// worker (use worker -1 for the all-workers total, op "" for the
// all-ops total).
func (p *FaultPlan) FrameCount(op string, worker int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[frameKey{op, worker}]
}

// Events returns the fired injections in firing order.
func (p *FaultPlan) Events() []FaultEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]FaultEvent(nil), p.events...)
}

// faultDropError is the synthetic transport error a dropped frame
// surfaces: the coordinator treats it exactly like a send that vanished
// into the network (retry, then declare the worker dead).
type faultDropError struct {
	op     string
	worker int
}

func (e *faultDropError) Error() string {
	return fmt.Sprintf("dist: fault injection dropped %s frame to worker %d", e.op, e.worker)
}

// Timeout marks the drop as a deadline-style failure, matching what a
// real lost frame looks like through a per-call deadline.
func (e *faultDropError) Timeout() bool { return true }
