package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"keystoneml/internal/cluster"
	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/optimizer"
	"keystoneml/keystone"
)

// FitOptions configures a distributed fit. The zero value is usable:
// one partition per worker-slot heuristic, full optimization, loopback
// resource descriptor.
type FitOptions struct {
	// Partitions is the number of global partitions the training data is
	// split into (0 = 2x the worker count, so every worker holds work
	// even after round-robin placement).
	Partitions int
	// Parallelism bounds the coordinator's local engine context, used
	// for profiling and estimator fits (0 = 1: the coordinator is
	// sequential; parallelism lives on the workers).
	Parallelism int
	// NumClasses feeds k into the solver cost models (0 = derived from
	// the label width).
	NumClasses int
	// CacheBudgetBytes caps the distributed materialization set chosen
	// by the planner; zero means unlimited.
	CacheBudgetBytes int64
	// Level selects the optimizer configuration (zero value = LevelFull).
	Level keystone.Level
	// SampleSizes overrides the two profiling sample sizes (zero =
	// optimizer defaults).
	SampleSizes [2]int
	// Resources describes the cluster for the cost model; nil uses
	// cluster.Loopback for the connected worker count.
	Resources *cluster.Resources
}

// Report summarizes one distributed fit: the cluster shape it ran over,
// the modeled makespan the materialization set was chosen under, and the
// wall-clock split between optimization and distributed training.
type Report struct {
	Workers    int
	Partitions int
	// OptimizeTime is sampling + profiling + planning on the
	// coordinator; TrainTime the distributed execution (dispatches,
	// shuffles, estimator fits).
	OptimizeTime time.Duration
	TrainTime    time.Duration
	// ModeledMakespan is the distributed-time simulation of the chosen
	// plan (seconds) — what the planner believed this fit would cost.
	ModeledMakespan float64
	// CacheSet lists the operators whose outputs stayed resident on the
	// workers between passes.
	CacheSet []string
	// Recoveries counts worker deaths the fit survived: each one
	// reassigned the dead worker's partitions and replayed their lineage
	// on the survivors. Zero on a clean run.
	Recoveries int
	// ReplayedPartitions counts (dataset, partition) pairs rebuilt by
	// lineage replay across all recoveries — the recomputed work that
	// would have aborted the fit before fault tolerance.
	ReplayedPartitions int
}

// Fit trains pipeline p data-parallel across the cluster's workers and
// returns a fitted pipeline bit-identical to what a single-process
// keystone Fit at the same optimizer level would produce: partitions
// keep their global indices through every remote op, estimator inputs
// are fetched back in exact global order, and the models themselves are
// fit on the coordinator with the same collection shapes the local
// executor would have built.
//
// The optimizer runs on the coordinator over the local copy of the data
// (sampling and profiling are cheap relative to training), but costs its
// materialization choices with the distributed makespan model — network
// transfer and stage-launch terms from opts.Resources — so what the
// workers cache is decided by off-box economics, not local ones.
//
// Fit survives worker failure. Every remote dispatch records lineage —
// the chain of (op kind, state) applications that produced each
// distributed dataset from the coordinator-held input partitions — and
// when a worker's per-call deadline expires or its connection tears past
// the redial budget, the coordinator declares it dead, reassigns its
// partitions round-robin over the survivors, and replays exactly the
// lost partitions' chains onto their new owners before retrying the
// interrupted op. Because every recorded op is deterministic and
// partition-local, the recovered fit is bit-identical to the no-failure
// run; the fit only aborts when no live workers remain. Report.Recoveries
// says how many deaths a fit absorbed.
func Fit[I, O any](ctx context.Context, cl *Cluster, p *keystone.Pipeline[I, O], records []I, labels [][]float64, opts FitOptions) (fitted *keystone.Fitted[I, O], rep *Report, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cl == nil || cl.Workers() == 0 {
		return nil, nil, fmt.Errorf("dist: Fit needs a connected cluster")
	}
	if len(records) == 0 {
		return nil, nil, fmt.Errorf("dist: Fit requires at least one training record")
	}
	if labels != nil && len(labels) != len(records) {
		return nil, nil, fmt.Errorf("dist: %d records but %d labels", len(records), len(labels))
	}
	graph, out := p.EngineGraph()
	if labels == nil && usesLabels(graph, out) {
		return nil, nil, fmt.Errorf("dist: pipeline contains a supervised estimator but Fit was called with nil labels")
	}
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(distAbort); ok {
				fitted, rep, err = nil, nil, a.err
				return
			}
			fitted, rep, err = nil, nil, fmt.Errorf("dist: fit panicked: %v", r)
		}
	}()

	workers := cl.Workers()
	parts := opts.Partitions
	if parts <= 0 {
		parts = 2 * workers
	}
	if parts > len(records) {
		parts = len(records)
	}
	par := opts.Parallelism
	if par <= 0 {
		par = 1
	}
	classes := opts.NumClasses
	if classes == 0 && len(labels) > 0 {
		classes = len(labels[0])
	}
	res := opts.Resources
	if res == nil {
		r := cluster.Loopback(workers)
		res = &r
	}

	boxed := make([]any, len(records))
	for i, r := range records {
		boxed[i] = r
	}
	data := engine.FromSlice(boxed, parts)
	var lab *engine.Collection
	if labels != nil {
		boxedLab := make([]any, len(labels))
		for i, l := range labels {
			boxedLab[i] = l
		}
		lab = engine.FromSlice(boxedLab, parts)
	}

	// Optimize a private clone with the distributed cost model attached;
	// p's DAG stays pristine, like the local Fit.
	g := graph.Clone()
	g.Sink = g.Nodes[out.ID]
	logical := make(map[int]string, len(g.Nodes))
	for _, n := range g.Nodes {
		logical[n.ID] = n.OpName()
	}
	plan, err := optimizer.OptimizeContext(ctx, g, data, lab, optimizer.Config{
		Level:          level(opts.Level),
		Resources:      *res,
		MemBudgetBytes: opts.CacheBudgetBytes,
		NumClasses:     classes,
		SampleSizes:    opts.SampleSizes,
		Parallelism:    par,
		Dist: &core.DistModel{
			Workers:         workers,
			StageLatencySec: res.StageLatencySec,
			NetSecPerByte:   res.CoordWeight(),
		},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("dist: optimize: %w", err)
	}

	trainStart := time.Now()
	run := &fitRun{
		ctx:     ctx,
		cl:      cl,
		g:       plan.Graph,
		cached:  make(map[int]bool, len(plan.CacheSet)),
		labels:  lab,
		ectx:    engine.NewContext(par),
		models:  make(map[int]core.TransformOp),
		names:   make(map[int]string),
		fetched: make(map[int]*engine.Collection),
		lin:     core.NewLineage(),
		data:    data,
		dirty:   make(map[int]bool),
	}
	for _, id := range plan.CacheSet {
		run.cached[id] = true
	}
	defer run.freeAll()

	if err := run.loadSource(); err != nil {
		return nil, nil, fmt.Errorf("dist: load training data: %w", err)
	}
	// Demand the sink: transforms and gathers execute remotely, estimator
	// fits pull their (globally ordered) inputs back to the coordinator.
	name, temp, err := run.demand(plan.Graph.Sink)
	if err != nil {
		return nil, nil, err
	}
	run.release(name, temp)

	inner := core.NewFitted(plan.Graph, run.models, engine.NewContext(par))
	info := keystone.FitInfo{
		OptimizeTime: plan.OptimizeTime,
		TrainTime:    time.Since(trainStart),
		CSEMerged:    plan.CSEMerged,
		Chosen:       make(map[string]string, len(plan.Chosen)),
	}
	rep = &Report{
		Workers:            workers,
		Partitions:         parts,
		OptimizeTime:       plan.OptimizeTime,
		TrainTime:          info.TrainTime,
		Recoveries:         run.recoveries,
		ReplayedPartitions: run.replayedParts,
	}
	if plan.Schedule != nil {
		rep.ModeledMakespan = plan.Schedule.Makespan()
	}
	for _, id := range plan.CacheSet {
		info.Cached = append(info.Cached, plan.Graph.Nodes[id].OpName())
	}
	sort.Strings(info.Cached)
	rep.CacheSet = info.Cached
	for id, op := range plan.Chosen {
		info.Chosen[fmt.Sprintf("#%d %s", id, logical[id])] = op
	}
	if plan.Profile != nil {
		for _, np := range plan.Profile.Nodes {
			info.EstimatedStateBytes += np.SizeBytes
		}
	}
	return keystone.NewEngineFitted[I, O](inner, info), rep, nil
}

// level maps the public optimizer level to the internal one (the
// keystone package keeps its mapping unexported).
func level(l keystone.Level) optimizer.Level {
	switch l {
	case keystone.LevelNone:
		return optimizer.LevelNone
	case keystone.LevelPipeline:
		return optimizer.LevelPipeline
	default:
		return optimizer.LevelFull
	}
}

// usesLabels reports whether any node reachable from out reads the label
// source (mirrors the keystone-internal check).
func usesLabels(g *core.Graph, out *core.Node) bool {
	seen := make(map[int]bool)
	var walk func(n *core.Node) bool
	walk = func(n *core.Node) bool {
		if seen[n.ID] {
			return false
		}
		seen[n.ID] = true
		if n == g.Labels {
			return true
		}
		for _, d := range n.Deps {
			if walk(d) {
				return true
			}
		}
		return false
	}
	return walk(out)
}

// distAbort carries a distributed-execution error out of estimator Fit
// callbacks (which cannot return errors) to the top-level recover.
type distAbort struct{ err error }

// fitRun is the coordinator-side state of one distributed execution: a
// demand-driven recursion over the optimized DAG where retained
// (cache-set) datasets are computed once and kept resident under stable
// names, and everything else is recomputed per demand under temp names
// and freed immediately — the same recompute-on-miss semantics the cost
// model priced.
type fitRun struct {
	ctx    context.Context
	cl     *Cluster
	g      *core.Graph
	cached map[int]bool
	labels *engine.Collection
	ectx   *engine.Context
	models map[int]core.TransformOp

	names   map[int]string             // node ID -> resident dataset (cache set + source)
	fetched map[int]*engine.Collection // coordinator-side fetch memo for cached nodes
	tmpSeq  int
	temps   map[string]bool // live temp names, for cleanup on abort

	// Fault-tolerance state: the recorded derivation of every dataset
	// this run created, the coordinator's copy of the root partitions
	// (reloaded on demand during replay), and the global partitions lost
	// to a death but not yet rebuilt on their new owners.
	lin           *core.Lineage
	data          *engine.Collection
	dirty         map[int]bool
	recoveries    int
	replayedParts int
}

func (r *fitRun) sourceName() string { return fmt.Sprintf("n%d", r.g.Source.ID) }

func (r *fitRun) tempName() string {
	r.tmpSeq++
	name := fmt.Sprintf("t%d", r.tmpSeq)
	if r.temps == nil {
		r.temps = make(map[string]bool)
	}
	r.temps[name] = true
	return name
}

// release frees a temp dataset after its one use; retained datasets stay
// resident for later demands. The lineage node is only marked dropped,
// not deleted: live descendants still replay through it.
func (r *fitRun) release(name string, temp bool) {
	if !temp {
		return
	}
	delete(r.temps, name)
	r.lin.Drop(name)
	r.cl.Free(name) //nolint:errcheck // best-effort: a failed free only leaks worker memory
}

// freeAll drops every dataset this run created on the workers (resident
// and leftover temps). Called on both success and abort.
func (r *fitRun) freeAll() {
	names := []string{r.sourceName()}
	for _, n := range r.names {
		names = append(names, n)
	}
	for n := range r.temps {
		names = append(names, n)
	}
	r.cl.Free(names...) //nolint:errcheck // best-effort cleanup
}

// demand materializes node n's output on the workers and returns the
// dataset name holding it plus whether the caller owns (must release) it.
func (r *fitRun) demand(n *core.Node) (string, bool, error) {
	if err := checkCtx(r.ctx); err != nil {
		return "", false, err
	}
	switch n.Kind {
	case core.KindSource:
		return r.sourceName(), false, nil
	case core.KindLabels:
		return "", false, fmt.Errorf("dist: labels demanded as a remote dataset (labels stay on the coordinator)")
	case core.KindEstimator:
		return "", false, fmt.Errorf("dist: estimator node %d demanded as a dataset", n.ID)
	}
	if name, ok := r.names[n.ID]; ok {
		return name, false, nil
	}
	retain := r.cached[n.ID]
	var out string
	if retain {
		out = fmt.Sprintf("n%d", n.ID)
	} else {
		out = r.tempName()
	}
	if err := r.compute(n, out); err != nil {
		return "", false, err
	}
	if retain {
		r.names[n.ID] = out
		return out, false, nil
	}
	return out, true, nil
}

// compute executes one node remotely, storing its output under out.
func (r *fitRun) compute(n *core.Node, out string) error {
	switch n.Kind {
	case core.KindTransform:
		in, temp, err := r.demand(n.Deps[0])
		if err != nil {
			return err
		}
		err = r.applyOp(out, in, n.Transform)
		r.release(in, temp)
		return err
	case core.KindGather:
		return r.gather(n, out)
	case core.KindApplyModel:
		model, err := r.fit(n.Deps[0])
		if err != nil {
			return err
		}
		in, temp, err := r.demand(n.Deps[1])
		if err != nil {
			return err
		}
		err = r.applyOp(out, in, model)
		r.release(in, temp)
		return err
	default:
		return fmt.Errorf("dist: cannot compute %s node %d remotely", n.Kind, n.ID)
	}
}

// gather concatenates the branches' features pairwise left to right —
// the same association order as the local executor, so feature layouts
// match bit for bit.
func (r *fitRun) gather(n *core.Node, out string) error {
	acc, accTemp, err := r.demand(n.Deps[0])
	if err != nil {
		return err
	}
	if len(n.Deps) == 1 {
		err = r.aliasOp(out, acc)
		r.release(acc, accTemp)
		return err
	}
	for i := 1; i < len(n.Deps); i++ {
		b, bTemp, err := r.demand(n.Deps[i])
		if err != nil {
			r.release(acc, accTemp)
			return err
		}
		dst := out
		intermediate := i < len(n.Deps)-1
		if intermediate {
			dst = r.tempName()
		}
		err = r.zipOp(dst, acc, b)
		r.release(acc, accTemp)
		r.release(b, bTemp)
		if err != nil {
			return err
		}
		acc, accTemp = dst, intermediate
	}
	return nil
}

// fit runs one estimator on the coordinator. Its data fetches demand the
// input remotely and pull it back in global partition order; cached
// inputs are memoized locally so iterative estimators refetch for free,
// exactly as the cost model assumes.
func (r *fitRun) fit(n *core.Node) (core.TransformOp, error) {
	if n.Kind != core.KindEstimator {
		return nil, fmt.Errorf("dist: node %d is %s, want estimator", n.ID, n.Kind)
	}
	if m, ok := r.models[n.ID]; ok {
		return m, nil
	}
	dep := n.Deps[0]
	dataFetch := func() *engine.Collection {
		if c := r.fetched[dep.ID]; c != nil {
			return c
		}
		name, temp, err := r.demand(dep)
		if err != nil {
			panic(distAbort{err})
		}
		coll, err := r.fetchOp(name)
		r.release(name, temp)
		if err != nil {
			panic(distAbort{err})
		}
		if r.cached[dep.ID] {
			r.fetched[dep.ID] = coll
		}
		return coll
	}
	var labelsFetch core.Fetch
	if len(n.Deps) > 1 {
		// Deps[1] is the label source; labels never leave the
		// coordinator, so the fetch is a local lookup.
		labelsFetch = func() *engine.Collection {
			if r.labels == nil {
				panic(distAbort{fmt.Errorf("dist: pipeline uses labels but none were bound at Fit time")})
			}
			return r.labels
		}
	}
	model := n.Estimator.Fit(r.ectx, dataFetch, labelsFetch)
	r.models[n.ID] = model
	return model, nil
}

// --- fault tolerance ---------------------------------------------------
//
// Every remote dispatch below records its lineage before touching the
// wire and runs inside retrying, which absorbs worker deaths: the dead
// worker's partitions are reassigned, their lineage replayed onto the
// new owners, and the interrupted op re-broadcast. Unscoped ops are
// idempotent (they replace their output wholesale per worker), so the
// retried op never needs partial-progress bookkeeping — only the other
// live datasets do, and those are exactly what the replay rebuilds.

// loadSource ships the training data under the source node's name and
// records it as the lineage root the whole fit replays from.
func (r *fitRun) loadSource() error {
	name := r.sourceName()
	r.lin.Root(name)
	return r.retrying(name, func() error { return r.cl.Load(name, r.data) })
}

// applyOp records and dispatches one operator application. The operator
// is encoded once; the same bytes serve the wire and the lineage record,
// so a replay re-runs bit-identically what the original dispatch ran.
func (r *fitRun) applyOp(dst, src string, op core.TransformOp) error {
	kind, state, err := core.EncodeOp(op)
	if err != nil {
		return fmt.Errorf("dist: operator %q not shippable: %w", op.Name(), err)
	}
	r.lin.Apply(dst, src, kind, state)
	return r.retrying(dst, func() error { return r.cl.ApplyEncoded(dst, src, kind, state) })
}

// zipOp records and dispatches one gather-join.
func (r *fitRun) zipOp(dst, a, b string) error {
	r.lin.Zip(dst, a, b)
	return r.retrying(dst, func() error { return r.cl.Zip(dst, a, b) })
}

// aliasOp records and dispatches one single-branch gather.
func (r *fitRun) aliasOp(dst, src string) error {
	r.lin.Alias(dst, src)
	return r.retrying(dst, func() error { return r.cl.Alias(dst, src) })
}

// fetchOp pulls a dataset back to the coordinator under the same
// recovery loop as the dispatches: a worker dying mid-fetch triggers
// replay of the lost partitions (the fetched dataset included) before
// the fetch is retried.
func (r *fitRun) fetchOp(name string) (*engine.Collection, error) {
	var coll *engine.Collection
	err := r.retrying("", func() error {
		var err error
		coll, err = r.cl.Fetch(name)
		return err
	})
	return coll, err
}

// retrying runs one remote op under the recovery loop: before every
// attempt it drains newly detected worker deaths (reassigning and
// replaying their partitions), and a *WorkerFailure from the op itself
// buys another round. skip names the dataset the op produces — excluded
// from replay because the retried op recomputes it wholesale (nothing
// derives from it yet). Application-level errors return immediately.
func (r *fitRun) retrying(skip string, op func() error) error {
	attempts := r.cl.Workers() + 1
	var err error
	for a := 0; a < attempts; a++ {
		if err = checkCtx(r.ctx); err != nil {
			return err
		}
		if err = r.drainFailures(skip); err != nil {
			return err
		}
		if err = op(); err == nil {
			return nil
		}
		var wf *WorkerFailure
		if !errors.As(err, &wf) {
			return err
		}
	}
	return err
}

// drainFailures is the recovery procedure. For every worker declared
// dead since the last drain: reassign its partitions round-robin over
// the survivors and mark them dirty; then rebuild all dirty partitions
// of every live dataset (minus skip) by lineage replay. It loops because
// a survivor can die mid-replay — its partitions join the dirty set and
// the next round replays onto the shrunken cluster — and converges or
// runs out of workers within Workers+2 rounds.
func (r *fitRun) drainFailures(skip string) error {
	maxRounds := r.cl.Workers() + 2
	for round := 0; round < maxRounds; round++ {
		dead := r.cl.TakeFailed()
		if len(dead) == 0 && len(r.dirty) == 0 {
			return nil
		}
		for _, w := range dead {
			moved, err := r.cl.Reassign(w)
			if err != nil {
				return err
			}
			for _, parts := range moved {
				for _, p := range parts {
					r.dirty[p] = true
				}
			}
			r.recoveries++
		}
		if len(r.dirty) == 0 {
			continue
		}
		if err := r.replay(skip); err != nil {
			var wf *WorkerFailure
			if errors.As(err, &wf) {
				continue // death mid-replay: next round reassigns and replays again
			}
			return err
		}
		r.dirty = make(map[int]bool)
	}
	return fmt.Errorf("dist: recovery did not converge after %d rounds", maxRounds)
}

// replay rebuilds the dirty partitions of every live dataset except skip
// on their (new) owners, walking the recorded lineage root-to-leaf:
// roots reload from the coordinator's copy of the training partitions,
// everything else re-applies the exact encoded ops that built it. All
// scoped ops merge, so survivors' partitions are never touched and a
// half-finished replay can simply run again. Dropped intermediates are
// recreated as scratch and freed afterwards.
func (r *fitRun) replay(skip string) error {
	var targets []string
	for _, name := range r.lin.Live() {
		if name != skip {
			targets = append(targets, name)
		}
	}
	if len(targets) == 0 {
		return nil
	}
	order, err := r.lin.ReplayOrder(targets)
	if err != nil {
		return err
	}
	owners := r.cl.Owners()
	byOwner := make(map[int][]int)
	for p := range r.dirty {
		if p >= len(owners) {
			return fmt.Errorf("dist: dirty partition %d outside owners table (%d partitions)", p, len(owners))
		}
		byOwner[owners[p]] = append(byOwner[owners[p]], p)
	}
	workers := make([]int, 0, len(byOwner))
	for w := range byOwner {
		sort.Ints(byOwner[w])
		workers = append(workers, w)
	}
	sort.Ints(workers)

	var scratch []string
	defer func() {
		if len(scratch) > 0 {
			r.cl.Free(scratch...) //nolint:errcheck // best-effort scratch cleanup
		}
	}()
	for _, node := range order {
		if !node.Live {
			scratch = append(scratch, node.Name)
		}
		for _, w := range workers {
			parts := byOwner[w]
			var err error
			switch node.Kind {
			case core.LineageRoot:
				payload := make([]partition, len(parts))
				for i, p := range parts {
					payload[i] = partition{Index: p, Records: r.data.Partition(p)}
				}
				err = r.cl.LoadParts(w, node.Name, payload)
			case core.LineageApply:
				err = r.cl.ApplyParts(w, node.Name, node.Parents[0], node.OpKind, node.OpState, parts)
			case core.LineageZip:
				err = r.cl.ZipParts(w, node.Name, node.Parents[0], node.Parents[1], parts)
			case core.LineageAlias:
				err = r.cl.AliasParts(w, node.Name, node.Parents[0], parts)
			default:
				err = fmt.Errorf("dist: cannot replay %s lineage node %q", node.Kind, node.Name)
			}
			if err != nil {
				return err
			}
			r.replayedParts += len(parts)
		}
	}
	return nil
}
