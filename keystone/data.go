package keystone

import (
	"keystoneml/internal/workload"
)

// Dataset bundles a typed record set with one-hot labels and integer
// ground truth, ready to pass to Fit.
type Dataset[I any] struct {
	Records []I
	Labels  [][]float64 // one-hot, aligned with Records
	Truth   []int       // integer class per record
	Classes int
}

// OneHot expands integer class labels into the one-hot vectors Fit
// consumes.
func OneHot(truth []int, classes int) [][]float64 {
	out := make([][]float64, len(truth))
	for i, c := range truth {
		y := make([]float64, classes)
		y[c] = 1
		out[i] = y
	}
	return out
}

// fromWorkload converts an internal generated dataset to the typed form.
func fromWorkload[I any](l workload.Labeled) Dataset[I] {
	raw := l.Data.Collect()
	recs := make([]I, len(raw))
	for i, r := range raw {
		recs[i] = r.(I)
	}
	return Dataset[I]{
		Records: recs,
		Labels:  OneHot(l.Truth, l.Classes),
		Truth:   l.Truth,
		Classes: l.Classes,
	}
}

// SyntheticReviews generates a binary-sentiment review corpus shaped like
// the paper's Amazon workload (deterministic in seed).
func SyntheticReviews(n int, seed uint64) Dataset[string] {
	return fromWorkload[string](workload.AmazonReviews(n, seed, 1))
}

// SyntheticDenseVectors generates class-structured dense vectors shaped
// like the TIMIT features (deterministic in seed).
func SyntheticDenseVectors(n, dim, classes int, seed uint64) Dataset[[]float64] {
	return fromWorkload[[]float64](workload.DenseVectors(n, dim, classes, seed, 1))
}

// SyntheticImages generates striped synthetic images with
// class-conditional texture, standing in for the VOC/ImageNet/CIFAR
// corpora (deterministic in seed).
func SyntheticImages(n, size, channels, classes int, seed uint64) Dataset[*Image] {
	return fromWorkload[*Image](workload.Images(n, size, channels, classes, seed, 1))
}
