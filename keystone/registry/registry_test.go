package registry

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"keystoneml/keystone"
)

func openTemp(t *testing.T) *Registry {
	t.Helper()
	r, err := Open(filepath.Join(t.TempDir(), "reg"))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return r
}

func TestPutGetHas(t *testing.T) {
	r := openTemp(t)
	data := []byte("artifact bytes")
	id, err := r.Put(data)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	sum := sha256.Sum256(data)
	if want := hex.EncodeToString(sum[:]); id != want {
		t.Fatalf("Put returned %s, want content address %s", id, want)
	}
	if !r.Has(id) {
		t.Fatal("Has(id) = false after Put")
	}
	got, err := r.Get(id)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if string(got) != string(data) {
		t.Fatalf("Get returned %q", got)
	}
	// Idempotent re-put.
	id2, err := r.Put(data)
	if err != nil || id2 != id {
		t.Fatalf("second Put = (%s, %v), want (%s, nil)", id2, err, id)
	}
	if _, err := r.Get("0000000000000000000000000000000000000000000000000000000000000000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
}

func TestGetDetectsCorruption(t *testing.T) {
	r := openTemp(t)
	id, err := r.Put([]byte("will be damaged"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(r.objectPath(id), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(id); err == nil {
		t.Fatal("Get of a tampered object must error")
	}
}

func TestTagsAndResolve(t *testing.T) {
	r := openTemp(t)
	idA, _ := r.Put([]byte("artifact A"))
	idB, _ := r.Put([]byte("artifact B"))

	if err := r.Tag("text.live", idA); err != nil {
		t.Fatalf("tag: %v", err)
	}
	if err := r.Tag("bad name!", idA); err == nil {
		t.Fatal("invalid tag name must be rejected")
	}
	if err := r.Tag("dangling", "feedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedface"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tagging an absent object = %v, want ErrNotFound", err)
	}

	// Resolve: by tag, by full id, by unique prefix.
	if id, err := r.Resolve("text.live"); err != nil || id != idA {
		t.Fatalf("Resolve(tag) = (%s, %v), want %s", id, err, idA)
	}
	if id, err := r.Resolve(idB); err != nil || id != idB {
		t.Fatalf("Resolve(full id) = (%s, %v), want %s", id, err, idB)
	}
	if id, err := r.Resolve(idB[:8]); err != nil || id != idB {
		t.Fatalf("Resolve(prefix) = (%s, %v), want %s", id, err, idB)
	}
	if _, err := r.Resolve("zz"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Resolve(nonsense) = %v, want ErrNotFound", err)
	}
	if _, err := r.Resolve("ffff"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Resolve(unmatched prefix) = %v, want ErrNotFound", err)
	}

	// Retag moves the pointer.
	if err := r.Tag("text.live", idB); err != nil {
		t.Fatal(err)
	}
	if id, _ := r.Resolve("text.live"); id != idB {
		t.Fatalf("retagged text.live resolves to %s, want %s", id, idB)
	}

	tags, err := r.Tags()
	if err != nil {
		t.Fatal(err)
	}
	if tags["text.live"] != idB {
		t.Fatalf("Tags() = %v", tags)
	}

	if err := r.Untag("text.live"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve("text.live"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Resolve(removed tag) = %v, want ErrNotFound", err)
	}
	if err := r.Untag("text.live"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Untag(absent) = %v, want ErrNotFound", err)
	}
}

func TestResolveAmbiguousPrefix(t *testing.T) {
	r := openTemp(t)
	// Prefix resolution reads object filenames only, so ids with a chosen
	// shared prefix can be planted directly on disk.
	id1 := "abcd" + strings.Repeat("0", 60)
	id2 := "abcd" + strings.Repeat("1", 60)
	for _, id := range []string{id1, id2} {
		if err := os.MkdirAll(filepath.Dir(r.objectPath(id)), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(r.objectPath(id), []byte(id), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Resolve("abcd"); !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("Resolve(shared prefix) = %v, want ErrAmbiguous", err)
	}
	if id, err := r.Resolve(id1[:5]); err != nil || id != id1 {
		t.Fatalf("Resolve(unique 5-char prefix) = (%s, %v), want %s", id, err, id1)
	}
	// Prefixes under 4 chars never resolve, unique or not.
	if _, err := r.Resolve("abc"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Resolve(3-char prefix) = %v, want ErrNotFound", err)
	}
}

func TestListEntries(t *testing.T) {
	r := openTemp(t)
	idA, _ := r.Put([]byte("first object"))
	idB, _ := r.Put([]byte("second object, longer"))
	if err := r.Tag("live", idA); err != nil {
		t.Fatal(err)
	}
	if err := r.Tag("prev", idA); err != nil {
		t.Fatal(err)
	}
	entries, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("List returned %d entries, want 2", len(entries))
	}
	byID := map[string]Entry{}
	for _, e := range entries {
		byID[e.ID] = e
	}
	a, b := byID[idA], byID[idB]
	if a.Size != int64(len("first object")) || b.Size != int64(len("second object, longer")) {
		t.Fatalf("sizes %d/%d wrong", a.Size, b.Size)
	}
	if len(a.Tags) != 2 || a.Tags[0] != "live" || a.Tags[1] != "prev" {
		t.Fatalf("tags on A = %v, want [live prev]", a.Tags)
	}
	if len(b.Tags) != 0 {
		t.Fatalf("tags on B = %v, want none", b.Tags)
	}
}

// TestStoreLoadFitted is the typed round-trip through the registry: a
// fitted text pipeline stored under a tag loads back and predicts
// bit-identically.
func TestStoreLoadFitted(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := openTemp(t)
	train := keystone.SyntheticReviews(120, 1)
	test := keystone.SyntheticReviews(12, 2)
	p := keystone.TextPipeline(keystone.TextConfig{NumFeatures: 300, Iterations: 4})
	f, err := p.Fit(context.Background(), train.Records, train.Labels,
		keystone.WithOptimizerLevel(keystone.LevelPipeline), keystone.WithSampleSizes(16, 32))
	if err != nil {
		t.Fatalf("fit: %v", err)
	}

	id, err := Store(r, f, "text.live")
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	loaded, gotID, err := Load[string, []float64](r, "text.live")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if gotID != id {
		t.Fatalf("Load resolved %s, want %s", gotID, id)
	}
	want, err := f.TransformBatch(context.Background(), test.Records)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.TransformBatch(context.Background(), test.Records)
	if err != nil {
		t.Fatalf("transform through loaded: %v", err)
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("record %d dim %d differs: %g vs %g", i, j, want[i][j], got[i][j])
			}
		}
	}

	// Type mismatch surfaces keystone's sentinel through the registry.
	if _, _, err := Load[[]float64, []float64](r, "text.live"); !errors.Is(err, keystone.ErrArtifactType) {
		t.Fatalf("Load with wrong types = %v, want ErrArtifactType", err)
	}
}
