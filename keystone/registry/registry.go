// Package registry is a content-addressed store for fitted-pipeline
// artifacts: objects are stored under the hex SHA-256 of their bytes,
// tags are named mutable pointers to objects, and references resolve by
// tag, full id, or unique id prefix. The layout is plain files
// (objects/<id[:2]>/<id>, tags/<name>), so a registry directory can be
// rsync'd, inspected, and garbage-collected with ordinary tools.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"

	"keystoneml/keystone"
)

// ErrNotFound reports a reference that resolves to no stored object.
var ErrNotFound = errors.New("registry: object not found")

// ErrAmbiguous reports an id prefix matching more than one object.
var ErrAmbiguous = errors.New("registry: ambiguous id prefix")

// tagRE constrains tag names to filesystem-safe tokens.
var tagRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)

// idRE matches (prefixes of) hex object ids.
var idRE = regexp.MustCompile(`^[0-9a-f]+$`)

// Registry is a content-addressed artifact store rooted at one
// directory. All methods are safe for concurrent use by multiple
// processes: objects are immutable once written (writes go through a
// temp file + rename), and tag updates are atomic renames.
type Registry struct {
	dir string
}

// Open opens (creating if needed) a registry rooted at dir.
func Open(dir string) (*Registry, error) {
	for _, sub := range []string{"objects", "tags"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("registry: open %s: %w", dir, err)
		}
	}
	return &Registry{dir: dir}, nil
}

// Dir returns the registry's root directory.
func (r *Registry) Dir() string { return r.dir }

func (r *Registry) objectPath(id string) string {
	return filepath.Join(r.dir, "objects", id[:2], id)
}

// Put stores data under its content address and returns the hex SHA-256
// id. Storing bytes already present is a cheap no-op returning the same
// id.
func (r *Registry) Put(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	id := hex.EncodeToString(sum[:])
	path := r.objectPath(id)
	if _, err := os.Stat(path); err == nil {
		return id, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("registry: put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".obj-*")
	if err != nil {
		return "", fmt.Errorf("registry: put: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("registry: put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("registry: put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("registry: put: %w", err)
	}
	return id, nil
}

// Get returns the object stored under the full id, re-verifying that the
// bytes still hash to their address (bit rot or tampering surfaces here,
// not in whatever consumes the artifact).
func (r *Registry) Get(id string) ([]byte, error) {
	data, err := os.ReadFile(r.objectPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err != nil {
		return nil, fmt.Errorf("registry: get %s: %w", id, err)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != id {
		return nil, fmt.Errorf("registry: object %s is corrupt (content hashes to %s)", id, got)
	}
	return data, nil
}

// Has reports whether the full id is stored.
func (r *Registry) Has(id string) bool {
	if len(id) < 2 {
		return false
	}
	_, err := os.Stat(r.objectPath(id))
	return err == nil
}

// Tag points name at the object ref resolves to. Tags are the registry's
// mutable layer — "text.live" style deployment pointers — and updates
// are atomic.
func (r *Registry) Tag(name, ref string) error {
	if !tagRE.MatchString(name) {
		return fmt.Errorf("registry: invalid tag name %q", name)
	}
	id, err := r.Resolve(ref)
	if err != nil {
		return err
	}
	path := filepath.Join(r.dir, "tags", name)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tag-*")
	if err != nil {
		return fmt.Errorf("registry: tag: %w", err)
	}
	if _, err := tmp.WriteString(id + "\n"); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("registry: tag: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("registry: tag: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("registry: tag: %w", err)
	}
	return nil
}

// Untag removes a tag (the object it pointed at stays).
func (r *Registry) Untag(name string) error {
	if !tagRE.MatchString(name) {
		return fmt.Errorf("registry: invalid tag name %q", name)
	}
	err := os.Remove(filepath.Join(r.dir, "tags", name))
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: tag %s", ErrNotFound, name)
	}
	return err
}

// Tags returns the tag table, name -> object id, sorted by name in the
// returned slice order of Keys; callers wanting determinism should sort.
func (r *Registry) Tags() (map[string]string, error) {
	entries, err := os.ReadDir(filepath.Join(r.dir, "tags"))
	if err != nil {
		return nil, fmt.Errorf("registry: tags: %w", err)
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(r.dir, "tags", e.Name()))
		if err != nil {
			return nil, fmt.Errorf("registry: tags: %w", err)
		}
		out[e.Name()] = strings.TrimSpace(string(data))
	}
	return out, nil
}

// Resolve turns a reference — a tag name, a full object id, or a unique
// id prefix (>= 4 hex chars) — into a full object id.
func (r *Registry) Resolve(ref string) (string, error) {
	if tagRE.MatchString(ref) {
		data, err := os.ReadFile(filepath.Join(r.dir, "tags", ref))
		if err == nil {
			id := strings.TrimSpace(string(data))
			if !r.Has(id) {
				return "", fmt.Errorf("%w: tag %s points at missing object %s", ErrNotFound, ref, id)
			}
			return id, nil
		}
	}
	if !idRE.MatchString(ref) || len(ref) < 4 {
		return "", fmt.Errorf("%w: %q is neither a tag nor an id (prefix)", ErrNotFound, ref)
	}
	if len(ref) == sha256.Size*2 {
		if !r.Has(ref) {
			return "", fmt.Errorf("%w: %s", ErrNotFound, ref)
		}
		return ref, nil
	}
	ids, err := r.list()
	if err != nil {
		return "", err
	}
	var match string
	for _, id := range ids {
		if strings.HasPrefix(id, ref) {
			if match != "" {
				return "", fmt.Errorf("%w: %q matches %s and %s", ErrAmbiguous, ref, match[:12], id[:12])
			}
			match = id
		}
	}
	if match == "" {
		return "", fmt.Errorf("%w: %s", ErrNotFound, ref)
	}
	return match, nil
}

// Entry describes one stored object in a List.
type Entry struct {
	// ID is the object's content address (hex SHA-256).
	ID string
	// Size is the object's byte length.
	Size int64
	// ModTime is when the object was stored.
	ModTime time.Time
	// Tags are the tag names currently pointing at the object.
	Tags []string
}

// List enumerates stored objects with their sizes and tags, sorted by id.
func (r *Registry) List() ([]Entry, error) {
	ids, err := r.list()
	if err != nil {
		return nil, err
	}
	tags, err := r.Tags()
	if err != nil {
		return nil, err
	}
	byID := make(map[string][]string)
	for name, id := range tags {
		byID[id] = append(byID[id], name)
	}
	out := make([]Entry, 0, len(ids))
	for _, id := range ids {
		fi, err := os.Stat(r.objectPath(id))
		if err != nil {
			continue // raced a concurrent GC; skip
		}
		names := byID[id]
		sort.Strings(names)
		out = append(out, Entry{ID: id, Size: fi.Size(), ModTime: fi.ModTime(), Tags: names})
	}
	return out, nil
}

// list returns all stored object ids, sorted.
func (r *Registry) list() ([]string, error) {
	root := filepath.Join(r.dir, "objects")
	buckets, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("registry: list: %w", err)
	}
	var ids []string
	for _, b := range buckets {
		if !b.IsDir() {
			continue
		}
		objs, err := os.ReadDir(filepath.Join(root, b.Name()))
		if err != nil {
			return nil, fmt.Errorf("registry: list: %w", err)
		}
		for _, o := range objs {
			if name := o.Name(); idRE.MatchString(name) && len(name) == sha256.Size*2 {
				ids = append(ids, name)
			}
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Store encodes a fitted pipeline into the artifact format, stores it
// under its content address, applies any tags, and returns the id. It is
// the typed write path pairing with Load.
func Store[I, O any](r *Registry, f *keystone.Fitted[I, O], tags ...string) (string, error) {
	data, err := keystone.Encode(f)
	if err != nil {
		return "", err
	}
	id, err := r.Put(data)
	if err != nil {
		return "", err
	}
	for _, tag := range tags {
		if err := r.Tag(tag, id); err != nil {
			return "", err
		}
	}
	return id, nil
}

// Load resolves ref, fetches the artifact, and decodes it as a fitted
// pipeline from I to O. It returns the resolved id alongside the
// pipeline so callers can record exactly which artifact they are
// serving.
func Load[I, O any](r *Registry, ref string, opts ...keystone.Option) (*keystone.Fitted[I, O], string, error) {
	id, err := r.Resolve(ref)
	if err != nil {
		return nil, "", err
	}
	data, err := r.Get(id)
	if err != nil {
		return nil, "", err
	}
	f, err := keystone.Decode[I, O](data, opts...)
	if err != nil {
		return nil, "", fmt.Errorf("registry: decode %s: %w", id[:12], err)
	}
	return f, id, nil
}
