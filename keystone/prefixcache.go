package keystone

import (
	"keystoneml/internal/engine"
)

// PrefixCache is a shared cache of materialized pipeline intermediates
// keyed by content signature instead of graph identity: concurrent Fit
// calls attached to the same PrefixCache reuse each other's outputs for
// every prefix their DAGs share (same operator chain, same encoded
// operator state, same training data). It is the cross-candidate reuse
// mechanism behind keystone/tune — several hyperparameter candidates
// that differ only in their solver fit the shared featurization once —
// but it is usable directly by any caller fitting related pipelines
// over identical data.
//
// Scoping contract: every Fit sharing one PrefixCache must be given the
// *same* training records (and the same labels-or-not shape). Fit bakes
// the record count into the signatures as a guard, but equal-length
// different datasets are on the caller; use one cache per dataset
// (keystone/tune uses one per halving round, because the training
// subset grows between rounds).
//
// Only operators with a registered codec (library ops, or closures
// registered via RegisterStatelessOp / RegisterFuncResolver) can be
// signed; an unsignable operator simply makes its node — and everything
// downstream of it — private to its own fit. Estimators and apply-model
// nodes are never shared. A PrefixCache is safe for concurrent use.
type PrefixCache struct {
	sc *engine.SharedCache
}

// NewPrefixCache creates a shared prefix cache bounded to budget bytes
// (non-positive = unlimited, LRU eviction over shared entries).
func NewPrefixCache(budget int64) *PrefixCache {
	return &PrefixCache{sc: engine.NewSharedCache(budget)}
}

// PrefixCacheStats is a snapshot of one PrefixCache's counters.
type PrefixCacheStats struct {
	// SharedHits counts node accesses served from a stored shared entry;
	// Coalesced counts accesses that joined another fit's in-flight
	// computation. Both are cross-fit reuse.
	SharedHits, Coalesced int64
	// Computes counts shared-node computations that actually ran — with
	// no eviction, exactly one per distinct prefix node across all fits.
	Computes int64
	// Rejected counts computed values the budget refused to store.
	Rejected int64
	// UsedBytes is the bytes currently held.
	UsedBytes int64
}

// Stats returns the cache's cumulative counters.
func (p *PrefixCache) Stats() PrefixCacheStats {
	s := p.sc.Stats()
	return PrefixCacheStats{
		SharedHits: s.Hits,
		Coalesced:  s.Coalesced,
		Computes:   s.Computes,
		Rejected:   s.Rejected,
		UsedBytes:  s.UsedBytes,
	}
}

// WithPrefixCache attaches a shared prefix cache to this Fit: signable
// prefix nodes consult and fill pc, so concurrent fits of pipelines
// sharing a featurization prefix over the same training data compute it
// once between them. See PrefixCache for the scoping contract.
func WithPrefixCache(pc *PrefixCache) Option {
	return func(c *fitConfig) { c.prefix = pc }
}
