package keystone

import (
	"keystoneml/internal/image"
	"keystoneml/internal/solvers"
	"keystoneml/internal/speech"
	"keystoneml/internal/text"
)

// Image is the raw image record type consumed by the vision pipelines.
type Image = image.Image

// --- Text operators (the paper's Figure 2 chain) ---

// Trim strips surrounding whitespace from a document.
func Trim() Op[string, string] { return wrapOp[string, string](text.Trim().Raw()) }

// LowerCase folds a document to lower case.
func LowerCase() Op[string, string] { return wrapOp[string, string](text.LowerCase().Raw()) }

// Tokenizer splits a document into word tokens.
func Tokenizer() Op[string, []string] { return wrapOp[string, []string](text.Tokenizer().Raw()) }

// NGrams expands a token stream into all n-grams for n in [lo, hi].
func NGrams(lo, hi int) Op[[]string, []string] {
	return wrapOp[[]string, []string](text.NGrams(lo, hi).Raw())
}

// TermFrequency maps a token stream to binary term frequencies, the
// weighting the paper's Amazon pipeline uses.
func TermFrequency() Op[[]string, map[string]float64] {
	return wrapOp[[]string, map[string]float64](text.TermFrequency(text.Binary).Raw())
}

// CommonSparseFeatures learns the numFeatures most frequent terms and
// encodes documents as sparse vectors over that vocabulary.
func CommonSparseFeatures(numFeatures int) Estimator[map[string]float64, any] {
	return wrapEst[map[string]float64, any](text.NewCommonSparseFeaturesEst(numFeatures).Raw(), false)
}

// --- Solvers ---

// LogisticRegression is the supervised multinomial logistic solver
// (physical implementation chosen by the optimizer: L-BFGS or minibatch
// SGD). Output is one score per class.
func LogisticRegression(iterations int) Estimator[any, []float64] {
	return wrapEst[any, []float64](&solvers.LogisticRegression{Iterations: iterations}, true)
}

// LinearSolver is the supervised least-squares solver over dense feature
// vectors; the optimizer picks among exact (QR) and iterative (L-BFGS,
// SGD, block coordinate) implementations by cost.
func LinearSolver(iterations int) Estimator[[]float64, []float64] {
	return wrapEst[[]float64, []float64](solvers.NewLinearSolverEst(iterations, 1e-4, 0).Raw(), true)
}

// --- Kernel approximation ---

// RandomFeatures maps dense vectors through random cosine features
// approximating an RBF kernel of bandwidth gamma (Rahimi-Recht), the
// featurization of the paper's TIMIT pipeline.
func RandomFeatures(inputDim, numFeatures int, gamma float64, seed uint64) Op[[]float64, []float64] {
	return wrapOp[[]float64, []float64](speech.NewRandomFeaturesOp(inputDim, numFeatures, gamma, seed).Raw())
}
