// Package keystone is the public face of KeystoneML-Go: a type-safe,
// chainable pipeline builder, a context-aware Fit entry point with
// functional options, and an immutable, concurrency-safe fitted-pipeline
// artifact with a single-record serving hot path.
//
// It is the only package consumers import — the operator library, the
// whole-pipeline optimizer (operator selection, common-subexpression
// elimination, automatic materialization), the dataflow engine, and the
// parallel DAG scheduler all sit behind it under internal/.
//
// Building mirrors the paper's Figure 2 API:
//
//	pipe := keystone.Then(
//	    keystone.Then(keystone.Input[string](), keystone.Tokenizer()),
//	    keystone.TermFrequency())
//	full := keystone.ThenEstimator(pipe, keystone.LogisticRegression(25))
//	fitted, err := full.Fit(ctx, docs, keystone.OneHot(truth, 2))
//	score, err := fitted.Transform(ctx, "a held-out document")
//
// Go methods cannot introduce new type parameters, so the type-changing
// chain steps are package-level generics (keystone.Then, ThenEstimator,
// Gather) exactly as in the paper's pipe.andThen(next); the method forms
// Pipeline.Then / Pipeline.ThenEstimator exist for the type-preserving
// (O -> O) case. Pipelines are immutable values: chaining returns new
// handles sharing the underlying DAG structurally, and Fit optimizes a
// private clone, so one Pipeline may be fit many times (and concurrently)
// with different data and options.
package keystone

import (
	"fmt"

	"keystoneml/internal/core"
)

// Pipeline is an unfitted pipeline from I records to O records: a typed
// handle onto a shared operator DAG. The zero value is not usable; start
// from Input.
type Pipeline[I, O any] struct {
	g   *core.Graph
	out *core.Node
}

// Input starts a pipeline of I records: the identity pipeline I -> I.
func Input[I any]() *Pipeline[I, I] {
	g := core.NewGraph()
	return &Pipeline[I, I]{g: g, out: g.Source}
}

// Op is a typed transformer from A to B: a deterministic, side-effect-free
// per-record function. Operators compose only when record types line up at
// compile time.
type Op[A, B any] struct {
	raw core.TransformOp
}

// NewOp builds a custom operator from a named function.
func NewOp[A, B any](name string, fn func(A) B) Op[A, B] {
	return Op[A, B]{raw: core.TypedTransform(name, fn)}
}

// wrapOp adapts an internal typed operator; the caller asserts the types.
func wrapOp[A, B any](raw core.TransformOp) Op[A, B] { return Op[A, B]{raw: raw} }

// Estimator is a typed estimator fit on A records producing an A -> B
// transformer. Supervised estimators additionally consume the label
// collection bound at Fit time.
type Estimator[A, B any] struct {
	raw        core.EstimatorOp
	supervised bool
}

// wrapEst adapts an internal estimator; the caller asserts the types.
func wrapEst[A, B any](raw core.EstimatorOp, supervised bool) Estimator[A, B] {
	return Estimator[A, B]{raw: raw, supervised: supervised}
}

// Then chains a type-changing transformer onto a pipeline:
// (I -> A) andThen (A -> B).
func Then[I, A, B any](p *Pipeline[I, A], op Op[A, B]) *Pipeline[I, B] {
	n := p.g.AddTransform(op.raw, p.out)
	return &Pipeline[I, B]{g: p.g, out: n}
}

// Then chains a type-preserving transformer (O -> O); use the
// package-level keystone.Then for type-changing steps.
func (p *Pipeline[I, O]) Then(op Op[O, O]) *Pipeline[I, O] {
	return Then(p, op)
}

// ThenEstimator chains an estimator: at Fit time it is trained on this
// pipeline's output over the training data (plus labels if supervised)
// and the learned model is applied to that same output.
func ThenEstimator[I, A, B any](p *Pipeline[I, A], est Estimator[A, B]) *Pipeline[I, B] {
	e := p.g.AddEstimator(est.raw, p.out, est.supervised)
	a := p.g.AddApplyModel(e, p.out)
	return &Pipeline[I, B]{g: p.g, out: a}
}

// ThenEstimator chains a type-preserving estimator (O -> O); use the
// package-level keystone.ThenEstimator for type-changing steps.
func (p *Pipeline[I, O]) ThenEstimator(est Estimator[O, O]) *Pipeline[I, O] {
	return ThenEstimator(p, est)
}

// Gather concatenates the []float64 outputs of several branches of the
// same pipeline element-wise, mirroring the paper's Pipeline.gather. All
// branches must originate from the same Input.
func Gather[I any](branches ...*Pipeline[I, []float64]) *Pipeline[I, []float64] {
	if len(branches) == 0 {
		panic("keystone: Gather requires at least one branch")
	}
	g := branches[0].g
	nodes := make([]*core.Node, len(branches))
	for i, b := range branches {
		if b.g != g {
			panic(fmt.Sprintf("keystone: Gather branch %d belongs to a different pipeline graph", i))
		}
		nodes[i] = b.out
	}
	n := g.AddGather(nodes)
	return &Pipeline[I, []float64]{g: g, out: n}
}

// String renders the pipeline DAG, one operator per line.
func (p *Pipeline[I, O]) String() string { return p.g.String() }
