package keystone

import (
	"keystoneml/internal/pipelines"
)

// Prebuilt pipelines: the five end-to-end applications of the paper's
// evaluation (Table 4), assembled from the operator library. Each builder
// returns an ordinary unfitted Pipeline that can be extended with Then or
// fit directly.

// TextConfig parameterizes the Amazon review-classification pipeline.
type TextConfig struct {
	NumFeatures int // vocabulary size (paper: 100k)
	Iterations  int // solver pass budget
}

// TextPipeline builds the Figure 2 text classification pipeline:
// Trim → LowerCase → Tokenize → NGrams(1,2) → TermFrequency →
// CommonSparseFeatures → LogisticRegression.
func TextPipeline(cfg TextConfig) *Pipeline[string, []float64] {
	p := pipelines.Text(pipelines.TextConfig{
		NumFeatures: cfg.NumFeatures,
		Iterations:  cfg.Iterations,
	})
	return &Pipeline[string, []float64]{g: p.Graph(), out: p.OutputNode()}
}

// SpeechConfig parameterizes the TIMIT kernel-SVM pipeline.
type SpeechConfig struct {
	InputDim    int     // raw feature dimensionality (paper: 440)
	NumFeatures int     // total random cosine features across both blocks
	Gamma       float64 // RBF bandwidth; 0 picks a dimension-scaled default
	Seed        uint64
	Iterations  int
}

// SpeechPipeline builds the TIMIT pipeline: two gathered random-feature
// blocks followed by the cost-model-selected linear solver.
func SpeechPipeline(cfg SpeechConfig) *Pipeline[[]float64, []float64] {
	p := pipelines.Speech(pipelines.SpeechConfig{
		InputDim:    cfg.InputDim,
		NumFeatures: cfg.NumFeatures,
		Gamma:       cfg.Gamma,
		Seed:        cfg.Seed,
		Iterations:  cfg.Iterations,
	})
	return &Pipeline[[]float64, []float64]{g: p.Graph(), out: p.OutputNode()}
}

// VisionConfig parameterizes the VOC / ImageNet Fisher-vector pipelines.
type VisionConfig struct {
	PCADims       int // descriptor dims after PCA (paper: 64/80)
	GMMComponents int // Fisher vocabulary size (paper: 16/256)
	SampleDescs   int // descriptors sampled per image for PCA/GMM fitting
	Seed          uint64
	Iterations    int
	WithLCS       bool // add the color-statistics branch (ImageNet variant)
}

// VisionPipeline builds the Figure 5 image classification DAG: SIFT
// descriptors, column-sampled PCA, GMM, Fisher vector encoding,
// normalization, linear solver — plus a gathered LCS color branch when
// WithLCS is set.
func VisionPipeline(cfg VisionConfig) *Pipeline[*Image, []float64] {
	p := pipelines.Vision(pipelines.VisionConfig{
		PCADims:       cfg.PCADims,
		GMMComponents: cfg.GMMComponents,
		SampleDescs:   cfg.SampleDescs,
		Seed:          cfg.Seed,
		Iterations:    cfg.Iterations,
		WithLCS:       cfg.WithLCS,
	})
	return &Pipeline[*Image, []float64]{g: p.Graph(), out: p.OutputNode()}
}

// CifarConfig parameterizes the CIFAR-10 convolutional pipeline.
type CifarConfig struct {
	PatchSize  int // convolution filter size (paper: 6)
	NumFilters int // filter bank size
	PoolSize   int
	Alpha      float64 // rectifier threshold
	Seed       uint64
	Iterations int
}

// CifarPipeline builds the CIFAR-10 pipeline: learned whitened patch
// filters, convolution, symmetric rectification, pooling, linear solver.
func CifarPipeline(cfg CifarConfig) *Pipeline[*Image, []float64] {
	p := pipelines.Cifar(pipelines.CifarConfig{
		PatchSize:  cfg.PatchSize,
		NumFilters: cfg.NumFilters,
		PoolSize:   cfg.PoolSize,
		Alpha:      cfg.Alpha,
		Seed:       cfg.Seed,
		Iterations: cfg.Iterations,
	})
	return &Pipeline[*Image, []float64]{g: p.Graph(), out: p.OutputNode()}
}
