package keystone

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
)

// ArtifactFormatVersion is the current on-disk artifact format. Load
// rejects artifacts written by a different format version.
const ArtifactFormatVersion = 1

// artifactMagic opens every artifact file (8 bytes).
const artifactMagic = "KSTNART\n"

// artifactDigestLen is the SHA-256 integrity trailer length.
const artifactDigestLen = sha256.Size

// ErrArtifactCorrupt reports an artifact whose bytes fail the integrity
// check: wrong magic, truncation, or a digest mismatch.
var ErrArtifactCorrupt = errors.New("keystone: artifact corrupt")

// ErrArtifactVersion reports an artifact written by an incompatible
// format version.
var ErrArtifactVersion = errors.New("keystone: artifact format version mismatch")

// ErrArtifactType reports an artifact whose pipeline input/output types
// do not match the type parameters it is being loaded with.
var ErrArtifactType = errors.New("keystone: artifact type mismatch")

// artifactPayload is the gob-encoded body of an artifact: the record
// types served, the precompiled step plan with per-operator fitted
// state, and the plan's structural fingerprint.
type artifactPayload struct {
	InType, OutType string
	Steps           []core.StepRecord
	OutIdx          int
	Shape           string // hex SHA-256 of core.ShapeSpec(Steps)
}

func typeName[T any]() string {
	return reflect.TypeOf((*T)(nil)).Elem().String()
}

func shapeDigest(steps []core.StepRecord) string {
	sum := sha256.Sum256([]byte(core.ShapeSpec(steps)))
	return hex.EncodeToString(sum[:])
}

// Encode serializes a fitted pipeline into the versioned artifact format:
// magic, a big-endian format version, the gob payload (step plan plus
// per-operator fitted state), and a SHA-256 integrity trailer over
// everything before it. Pipelines containing operators that support
// neither core.StateCodec nor name resolution (e.g. ad-hoc NewOp
// closures not registered with RegisterStatelessOp) cannot be encoded.
func Encode[I, O any](f *Fitted[I, O]) ([]byte, error) {
	if f == nil {
		return nil, fmt.Errorf("keystone: Encode of nil fitted pipeline")
	}
	steps, err := f.inner.StepRecords()
	if err != nil {
		return nil, err
	}
	payload := artifactPayload{
		InType:  typeName[I](),
		OutType: typeName[O](),
		Steps:   steps,
		OutIdx:  f.inner.OutIdx(),
		Shape:   shapeDigest(steps),
	}
	var buf bytes.Buffer
	buf.WriteString(artifactMagic)
	var ver [4]byte
	binary.BigEndian.PutUint32(ver[:], ArtifactFormatVersion)
	buf.Write(ver[:])
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return nil, fmt.Errorf("keystone: encode artifact payload: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// Decode reconstructs a fitted pipeline from artifact bytes, verifying
// the magic, format version, integrity digest, record types and pipeline
// shape. opts tune the reconstructed execution context (WithWorkers); the
// other fit options have no effect on a loaded pipeline.
func Decode[I, O any](data []byte, opts ...Option) (*Fitted[I, O], error) {
	header := len(artifactMagic) + 4
	if len(data) < header+artifactDigestLen {
		return nil, fmt.Errorf("%w: %d bytes is too short to be an artifact", ErrArtifactCorrupt, len(data))
	}
	if string(data[:len(artifactMagic)]) != artifactMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrArtifactCorrupt)
	}
	ver := binary.BigEndian.Uint32(data[len(artifactMagic):header])
	if ver != ArtifactFormatVersion {
		return nil, fmt.Errorf("%w: artifact is format v%d, this build reads v%d", ErrArtifactVersion, ver, ArtifactFormatVersion)
	}
	body, trailer := data[:len(data)-artifactDigestLen], data[len(data)-artifactDigestLen:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("%w: integrity digest mismatch", ErrArtifactCorrupt)
	}
	var payload artifactPayload
	if err := gob.NewDecoder(bytes.NewReader(body[header:])).Decode(&payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrArtifactCorrupt, err)
	}
	if in, out := typeName[I](), typeName[O](); payload.InType != in || payload.OutType != out {
		return nil, fmt.Errorf("%w: artifact serves %s -> %s, loading as %s -> %s",
			ErrArtifactType, payload.InType, payload.OutType, in, out)
	}
	if got := shapeDigest(payload.Steps); got != payload.Shape {
		return nil, fmt.Errorf("%w: shape digest %s does not match plan (%s)", ErrArtifactCorrupt, payload.Shape, got)
	}
	cfg := defaultFitConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	inner, err := core.FittedFromSteps(payload.Steps, payload.OutIdx, engine.NewContext(cfg.workers))
	if err != nil {
		return nil, err
	}
	return &Fitted[I, O]{inner: inner}, nil
}

// Save writes the fitted pipeline to path in the artifact format,
// atomically (temp file + rename), creating parent directories as
// needed.
func Save[I, O any](f *Fitted[I, O], path string) error {
	data, err := Encode(f)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("keystone: save artifact: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".ksart-*")
	if err != nil {
		return fmt.Errorf("keystone: save artifact: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("keystone: save artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("keystone: save artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("keystone: save artifact: %w", err)
	}
	return nil
}

// Load reads an artifact written by Save and reconstructs the fitted
// pipeline; see Decode for the checks applied.
func Load[I, O any](path string, opts ...Option) (*Fitted[I, O], error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("keystone: load artifact: %w", err)
	}
	f, err := Decode[I, O](data, opts...)
	if err != nil {
		return nil, fmt.Errorf("keystone: load artifact %s: %w", path, err)
	}
	return f, nil
}

// ShapeDigest returns the hex SHA-256 fingerprint of the pipeline's
// apply-time structure: step kinds, operator kinds and dependency
// wiring, independent of fitted weights. Two pipelines with equal
// digests run the same operators in the same topology, which makes the
// digest the compatibility key for artifact/route pairing. It fails for
// pipelines whose operators cannot be persisted.
func (f *Fitted[I, O]) ShapeDigest() (string, error) {
	steps, err := f.inner.StepRecords()
	if err != nil {
		return "", err
	}
	return shapeDigest(steps), nil
}

// RegisterStatelessOp makes a named stateless operator persistable: an
// artifact step whose operator carries this name is reconstructed by
// calling fn at load time. Use it for custom NewOp functions embedded in
// pipelines that need Save/Load; the name must fully determine fn's
// behaviour and must be registered (typically from an init function)
// before both Save and Load. Stateful custom operators should implement
// core.StateCodec instead.
func RegisterStatelessOp[A, B any](name string, fn func(A) B) {
	core.RegisterFuncResolver(func(n string) (core.TransformOp, bool) {
		if n != name {
			return nil, false
		}
		return core.TypedTransform(name, fn), true
	})
}
