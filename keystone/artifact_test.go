package keystone

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// encoded serializes the pipeline behind a served harness.
func (s *servedPipeline[I]) encoded(t *testing.T) []byte {
	t.Helper()
	data, err := Encode(s.f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// reload round-trips the pipeline through the artifact format and wraps
// the result in the same harness over the same test records.
func (s *servedPipeline[I]) reload(t *testing.T) served {
	t.Helper()
	f2, err := Decode[I, []float64](s.encoded(t))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &servedPipeline[I]{f: f2, test: s.test}
}

// shape returns the pipeline's structural fingerprint.
func (s *servedPipeline[I]) shape(t *testing.T) string {
	t.Helper()
	d, err := s.f.ShapeDigest()
	if err != nil {
		t.Fatalf("shape digest: %v", err)
	}
	return d
}

type reloadable interface {
	served
	encoded(t *testing.T) []byte
	reload(t *testing.T) served
	shape(t *testing.T) string
}

// TestArtifactRoundTrip is the persistence contract: for every
// evaluation pipeline, a fitted pipeline encoded to the artifact format
// and decoded back must produce bit-identical predictions to the
// in-memory original, on both the single-record and batch paths, and
// must keep the same shape digest.
func TestArtifactRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, c := range evaluationPipelines() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			s := c.fit(t).(reloadable)
			recs := s.testRecords()
			want := s.oracle(recs)

			loaded := s.reload(t)
			got, err := loaded.hot(context.Background(), recs)
			if err != nil {
				t.Fatalf("TransformBatch through loaded artifact: %v", err)
			}
			assertSameScores(t, c.name+"/loaded-batch", want, got)
			for i, r := range recs {
				one, err := loaded.hotOne(context.Background(), r)
				if err != nil {
					t.Fatalf("Transform record %d through loaded artifact: %v", i, err)
				}
				assertSameScores(t, fmt.Sprintf("%s/loaded-one[%d]", c.name, i), want[i:i+1], []any{one})
			}

			if orig, back := s.shape(t), loaded.(reloadable).shape(t); orig != back {
				t.Fatalf("shape digest changed across round-trip: %s vs %s", orig, back)
			}
		})
	}
}

// TestArtifactSaveLoadFile exercises the file-based path, including the
// type check: an artifact saved as string -> []float64 must refuse to
// load under different type parameters.
func TestArtifactSaveLoadFile(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fitText(t).(*servedPipeline[string])
	path := filepath.Join(t.TempDir(), "sub", "text.ksart")
	if err := Save(s.f, path); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load[string, []float64](path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	want, err := s.f.TransformBatch(context.Background(), s.test)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.TransformBatch(context.Background(), s.test)
	if err != nil {
		t.Fatalf("transform through loaded: %v", err)
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("record %d dim %d differs after save/load: %g vs %g", i, j, want[i][j], got[i][j])
			}
		}
	}

	if _, err := Load[[]float64, []float64](path); !errors.Is(err, ErrArtifactType) {
		t.Fatalf("loading with wrong input type = %v, want ErrArtifactType", err)
	}
	if _, err := Load[string, string](path); !errors.Is(err, ErrArtifactType) {
		t.Fatalf("loading with wrong output type = %v, want ErrArtifactType", err)
	}
	if _, err := Load[string, []float64](filepath.Join(t.TempDir(), "missing.ksart")); err == nil {
		t.Fatal("loading a missing file must error")
	}
}

// TestArtifactRejectsDamage covers the integrity and version gates: any
// bit damage fails with ErrArtifactCorrupt, and a format-version bump
// fails with ErrArtifactVersion (checked before the digest, so version
// skew is reported as such rather than as corruption).
func TestArtifactRejectsDamage(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fitText(t).(reloadable)
	good := s.encoded(t)

	damage := func(mut func([]byte) []byte) []byte {
		cp := make([]byte, len(good))
		copy(cp, good)
		return mut(cp)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrArtifactCorrupt},
		{"truncated", good[:len(good)/2], ErrArtifactCorrupt},
		{"bad magic", damage(func(b []byte) []byte { b[0] ^= 0xff; return b }), ErrArtifactCorrupt},
		{"flipped payload byte", damage(func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }), ErrArtifactCorrupt},
		{"flipped trailer byte", damage(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }), ErrArtifactCorrupt},
		{"future version", damage(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[8:12], ArtifactFormatVersion+1)
			return b
		}), ErrArtifactVersion},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Decode[string, []float64](c.data); !errors.Is(err, c.want) {
				t.Fatalf("Decode(%s) = %v, want %v", c.name, err, c.want)
			}
		})
	}

	// The pristine bytes must still decode — the damage helper must not
	// have mutated the original.
	if _, err := Decode[string, []float64](good); err != nil {
		t.Fatalf("pristine artifact no longer decodes: %v", err)
	}
}

func init() {
	// Registered at package init so both the encode and decode side of
	// TestArtifactCustomOp see it, mirroring how applications register
	// custom persistable ops.
	RegisterStatelessOp("test.double", func(x []float64) []float64 {
		out := make([]float64, len(x))
		for i, v := range x {
			out[i] = 2 * v
		}
		return out
	})
}

// TestArtifactCustomOp: a custom stateless op registered via
// RegisterStatelessOp round-trips; an unregistered ad-hoc closure fails
// Encode with a diagnosable error instead of producing an artifact that
// cannot load.
func TestArtifactCustomOp(t *testing.T) {
	train := SyntheticDenseVectors(40, 6, 3, 5)
	build := func(opName string) *Fitted[[]float64, []float64] {
		p := Then(Input[[]float64](), NewOp(opName, func(x []float64) []float64 {
			out := make([]float64, len(x))
			for i, v := range x {
				out[i] = 2 * v
			}
			return out
		}))
		f, err := ThenEstimator(p, LinearSolver(4)).Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
		if err != nil {
			t.Fatalf("fit: %v", err)
		}
		return f
	}

	f := build("test.double")
	data, err := Encode(f)
	if err != nil {
		t.Fatalf("encode with registered op: %v", err)
	}
	loaded, err := Decode[[]float64, []float64](data)
	if err != nil {
		t.Fatalf("decode with registered op: %v", err)
	}
	want, err := f.Transform(context.Background(), train.Records[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Transform(context.Background(), train.Records[0])
	if err != nil {
		t.Fatalf("transform through loaded: %v", err)
	}
	for j := range want {
		if want[j] != got[j] {
			t.Fatalf("dim %d differs: %g vs %g", j, want[j], got[j])
		}
	}

	if _, err := Encode(build("test.unregistered")); err == nil {
		t.Fatal("encoding a pipeline with an unregistered closure op must error")
	}
}
