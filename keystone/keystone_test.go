package keystone

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"keystoneml/internal/engine"
)

// served erases the I/O type parameters so the five pipelines can share
// one equivalence harness.
type served interface {
	oracle(recs []any) []any
	hot(ctx context.Context, recs []any) ([]any, error)
	hotOne(ctx context.Context, rec any) (any, error)
	testRecords() []any
}

type servedPipeline[I any] struct {
	f    *Fitted[I, []float64]
	test []I
}

func (s *servedPipeline[I]) testRecords() []any {
	out := make([]any, len(s.test))
	for i, r := range s.test {
		out[i] = r
	}
	return out
}

func (s *servedPipeline[I]) oracle(recs []any) []any {
	// The batch oracle: the partitioned Collection path through
	// Fitted.Apply, exactly what training-time evaluation uses.
	return s.f.inner.Apply(engine.FromSlice(recs, 3)).Collect()
}

func (s *servedPipeline[I]) hot(ctx context.Context, recs []any) ([]any, error) {
	typed := make([]I, len(recs))
	for i, r := range recs {
		typed[i] = r.(I)
	}
	outs, err := s.f.TransformBatch(ctx, typed)
	if err != nil {
		return nil, err
	}
	boxed := make([]any, len(outs))
	for i, o := range outs {
		boxed[i] = o
	}
	return boxed, nil
}

func (s *servedPipeline[I]) hotOne(ctx context.Context, rec any) (any, error) {
	return s.f.Transform(ctx, rec.(I))
}

func quickOpts() []Option {
	return []Option{
		WithOptimizerLevel(LevelPipeline),
		WithSampleSizes(16, 32),
	}
}

func fitText(t *testing.T) served {
	t.Helper()
	train := SyntheticReviews(160, 1)
	test := SyntheticReviews(24, 2)
	p := TextPipeline(TextConfig{NumFeatures: 800, Iterations: 8})
	f, err := p.Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	return &servedPipeline[string]{f: f, test: test.Records}
}

func fitSpeech(t *testing.T) served {
	t.Helper()
	train := SyntheticDenseVectors(120, 16, 6, 3)
	test := SyntheticDenseVectors(20, 16, 6, 4)
	p := SpeechPipeline(SpeechConfig{InputDim: 16, NumFeatures: 32, Gamma: 0.02, Seed: 11, Iterations: 6})
	f, err := p.Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	return &servedPipeline[[]float64]{f: f, test: test.Records}
}

func fitVision(t *testing.T, withLCS bool) served {
	t.Helper()
	train := SyntheticImages(14, 48, 3, 4, 40)
	test := SyntheticImages(6, 48, 3, 4, 41)
	p := VisionPipeline(VisionConfig{
		PCADims: 8, GMMComponents: 6, SampleDescs: 15, Seed: 9, Iterations: 6, WithLCS: withLCS,
	})
	f, err := p.Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	return &servedPipeline[*Image]{f: f, test: test.Records}
}

func fitCifar(t *testing.T) served {
	t.Helper()
	train := SyntheticImages(20, 32, 3, 4, 21)
	test := SyntheticImages(10, 32, 3, 4, 22)
	p := CifarPipeline(CifarConfig{NumFilters: 6, Seed: 23, Iterations: 6})
	f, err := p.Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	return &servedPipeline[*Image]{f: f, test: test.Records}
}

// fitCase is one evaluation pipeline fit at test scale through the
// public API.
type fitCase struct {
	name string
	fit  func(t *testing.T) served
}

func evaluationPipelines() []fitCase {
	return []fitCase{
		{"Amazon", func(t *testing.T) served { return fitText(t) }},
		{"TIMIT", func(t *testing.T) served { return fitSpeech(t) }},
		{"VOC", func(t *testing.T) served { return fitVision(t, false) }},
		{"VOC-LCS", func(t *testing.T) served { return fitVision(t, true) }},
		{"CIFAR-10", func(t *testing.T) served { return fitCifar(t) }},
	}
}

func assertSameScores(t *testing.T, name string, want, got []any) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: record counts differ: %d vs %d", name, len(want), len(got))
	}
	for i := range want {
		w, okW := want[i].([]float64)
		g, okG := got[i].([]float64)
		if !okW || !okG {
			t.Fatalf("%s: record %d types differ: %T vs %T", name, i, want[i], got[i])
		}
		if len(w) != len(g) {
			t.Fatalf("%s: record %d dims differ: %d vs %d", name, i, len(w), len(g))
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("%s: record %d dim %d differs: %g vs %g", name, i, j, w[j], g[j])
			}
		}
	}
}

// TestTransformEquivalence pins the serving hot path to the batch
// oracle: for every evaluation pipeline, Transform and TransformBatch
// must produce bit-identical scores to Fitted.Apply's
// Collection/partition path, on batches both below and above the
// parallel fan-out threshold.
func TestTransformEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, c := range evaluationPipelines() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			s := c.fit(t)
			recs := s.testRecords()
			want := s.oracle(recs)

			got, err := s.hot(context.Background(), recs)
			if err != nil {
				t.Fatalf("TransformBatch: %v", err)
			}
			assertSameScores(t, c.name+"/batch", want, got)

			for i, r := range recs {
				one, err := s.hotOne(context.Background(), r)
				if err != nil {
					t.Fatalf("Transform record %d: %v", i, err)
				}
				assertSameScores(t, fmt.Sprintf("%s/one[%d]", c.name, i), want[i:i+1], []any{one})
			}

			// A batch above the parallel fan-out threshold takes the
			// engine-worker path; outputs must not change.
			big := make([]any, 0, 80)
			for len(big) < 80 {
				big = append(big, recs[len(big)%len(recs)])
			}
			wantBig := s.oracle(big)
			gotBig, err := s.hot(context.Background(), big)
			if err != nil {
				t.Fatalf("TransformBatch(big): %v", err)
			}
			assertSameScores(t, c.name+"/big", wantBig, gotBig)
		})
	}
}

// TestTransformConcurrent hammers one Fitted with concurrent Transform
// and TransformBatch callers; run under -race this is the
// concurrency-safety contract of the serving artifact.
func TestTransformConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fitText(t)
	recs := s.testRecords()
	want := s.oracle(recs)

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gr := 0; gr < goroutines; gr++ {
		wg.Add(1)
		go func(gr int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (gr + it) % len(recs)
				if gr%2 == 0 {
					got, err := s.hotOne(context.Background(), recs[i])
					if err != nil {
						errs <- err
						return
					}
					w := want[i].([]float64)
					g := got.([]float64)
					for j := range w {
						if w[j] != g[j] {
							errs <- fmt.Errorf("goroutine %d: record %d dim %d: %g vs %g", gr, i, j, w[j], g[j])
							return
						}
					}
				} else {
					got, err := s.hot(context.Background(), recs)
					if err != nil {
						errs <- err
						return
					}
					if len(got) != len(want) {
						errs <- fmt.Errorf("goroutine %d: batch size %d vs %d", gr, len(got), len(want))
						return
					}
				}
			}
		}(gr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFitCancellation cancels a Fit mid-flight: the iterative solver
// refetches its input every pass, and both the fetch path and the
// partition dispatch poll the context, so the call must return promptly
// with the context error instead of running its full iteration budget.
func TestFitCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	train := SyntheticDenseVectors(600, 48, 8, 5)
	p := SpeechPipeline(SpeechConfig{InputDim: 48, NumFeatures: 512, Gamma: 0.02, Seed: 7, Iterations: 500})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := p.Fit(ctx, train.Records, train.Labels, quickOpts()...)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Fit returned nil error after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	// 500 L-BFGS passes over 600x512 features would take far longer than
	// this; a prompt return proves the fit unwound mid-pass.
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt unwind", elapsed)
	}
}

// TestFitDeadline exercises the deadline flavour of cancellation.
func TestFitDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	train := SyntheticDenseVectors(600, 48, 8, 5)
	p := SpeechPipeline(SpeechConfig{InputDim: 48, NumFeatures: 512, Gamma: 0.02, Seed: 7, Iterations: 500})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := p.Fit(ctx, train.Records, train.Labels, quickOpts()...)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded in chain, got %v", err)
	}
}

// TestFitPreCanceled: a context canceled before Fit starts fails fast
// without training anything.
func TestFitPreCanceled(t *testing.T) {
	train := SyntheticReviews(40, 1)
	p := TextPipeline(TextConfig{NumFeatures: 100, Iterations: 3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := p.Fit(ctx, train.Records, train.Labels, quickOpts()...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("pre-canceled Fit took %v", d)
	}
}

// TestSchedulerPolicyEquivalence: the scheduler policy changes dispatch
// order and retention, never results — both policies must produce
// identical predictions from the same data.
func TestSchedulerPolicyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	train := SyntheticReviews(120, 1)
	test := SyntheticReviews(16, 2)
	fitWith := func(policy SchedulerPolicy) []string {
		p := TextPipeline(TextConfig{NumFeatures: 400, Iterations: 6})
		opts := append(quickOpts(), WithWorkers(4), WithSchedulerPolicy(policy))
		fitted, err := p.Fit(context.Background(), train.Records, train.Labels, opts...)
		if err != nil {
			t.Fatalf("fit with policy %d: %v", policy, err)
		}
		out := make([]string, len(test.Records))
		for i, r := range test.Records {
			scores, err := fitted.Transform(context.Background(), r)
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			out[i] = fmt.Sprintf("%v", scores)
		}
		return out
	}
	auto := fitWith(SchedulerAuto)
	fifo := fitWith(SchedulerFIFO)
	for i := range auto {
		if auto[i] != fifo[i] {
			t.Fatalf("record %d: SchedulerAuto %s != SchedulerFIFO %s", i, auto[i], fifo[i])
		}
	}
}

// TestPipelineReusableAfterFit: Fit must not mutate the pipeline —
// fitting the same Pipeline value twice with the same data must produce
// identical predictions (the DAG is cloned per Fit, so CSE rewrites and
// operator substitution cannot leak between calls).
func TestPipelineReusableAfterFit(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	train := SyntheticReviews(120, 1)
	test := SyntheticReviews(16, 2)
	p := TextPipeline(TextConfig{NumFeatures: 500, Iterations: 6})

	f1, err := p.Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
	if err != nil {
		t.Fatalf("first fit: %v", err)
	}
	f2, err := p.Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
	if err != nil {
		t.Fatalf("second fit: %v", err)
	}
	o1, err := f1.TransformBatch(context.Background(), test.Records)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := f2.TransformBatch(context.Background(), test.Records)
	if err != nil {
		t.Fatal(err)
	}
	for i := range o1 {
		for j := range o1[i] {
			if o1[i][j] != o2[i][j] {
				t.Fatalf("refit diverged at record %d dim %d: %g vs %g", i, j, o1[i][j], o2[i][j])
			}
		}
	}
}

// TestFitValidation covers the argument errors.
func TestFitValidation(t *testing.T) {
	p := TextPipeline(TextConfig{NumFeatures: 50, Iterations: 2})
	if _, err := p.Fit(context.Background(), nil, nil); err == nil {
		t.Fatal("want error for empty training set")
	}
	if _, err := p.Fit(context.Background(), []string{"a", "b"}, [][]float64{{1, 0}}); err == nil {
		t.Fatal("want error for record/label count mismatch")
	}
	// A supervised pipeline fit without labels must error, not panic.
	if _, err := p.Fit(context.Background(), []string{"a", "b"}, nil); err == nil {
		t.Fatal("want error for supervised pipeline with nil labels")
	}
}

// TestFitRecoversOperatorPanic: a panicking user operator surfaces as an
// error from the public Fit, not a process crash.
func TestFitRecoversOperatorPanic(t *testing.T) {
	boom := NewOp("boom", func(x []float64) []float64 { panic("operator bug") })
	p := Input[[]float64]().Then(boom)
	full := ThenEstimator(p, LinearSolver(2))
	train := SyntheticDenseVectors(20, 4, 2, 1)
	_, err := full.Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
	if err == nil {
		t.Fatal("want error from panicking operator")
	}
}

// TestBuilderAPI exercises the chainable builder end to end with custom
// ops: a hand-built two-branch gathered pipeline through Fit and
// Transform.
func TestBuilderAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	scale := func(name string, k float64) Op[[]float64, []float64] {
		return NewOp(name, func(x []float64) []float64 {
			out := make([]float64, len(x))
			for i, v := range x {
				out[i] = k * v
			}
			return out
		})
	}
	in := Input[[]float64]()
	b1 := Then(in, scale("x2", 2))
	b2 := Then(in, scale("x3", 3))
	p := ThenEstimator(Gather(b1, b2), LinearSolver(5))

	train := SyntheticDenseVectors(80, 8, 3, 9)
	f, err := p.Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	out, err := f.Transform(context.Background(), train.Records[0])
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("want 3 class scores, got %d", len(out))
	}
	if f.Info().CSEMerged == 0 {
		t.Log("note: CSE merged nothing (branches differ); builder path still OK")
	}
}
