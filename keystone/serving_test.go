package keystone

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func fitTinyText(t *testing.T) (*Fitted[string, []float64], []string) {
	t.Helper()
	train := SyntheticReviews(100, 1)
	test := SyntheticReviews(20, 2)
	p := TextPipeline(TextConfig{NumFeatures: 400, Iterations: 5})
	f, err := p.Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	return f, test.Records
}

// TestBatcherCorrectness: every Predict through the micro-batcher must
// return exactly what a direct Transform returns, under heavy
// concurrency (this is also a -race stress of the serving stack).
func TestBatcherCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f, recs := fitTinyText(t)
	want := make([][]float64, len(recs))
	for i, r := range recs {
		w, err := f.Transform(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	b := NewBatcher(f, 8, 5*time.Millisecond)
	defer b.Close()

	const callers = 16
	const iters = 10
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	start := make(chan struct{})
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for it := 0; it < iters; it++ {
				i := (c*iters + it) % len(recs)
				got, err := b.Predict(context.Background(), recs[i])
				if err != nil {
					errs <- err
					return
				}
				for j := range want[i] {
					if got[j] != want[i][j] {
						errs <- errors.New("batched prediction diverged from direct Transform")
						return
					}
				}
			}
		}(c)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := b.Stats()
	if st.Records != callers*iters {
		t.Fatalf("served %d records, want %d", st.Records, callers*iters)
	}
	if st.Batches <= 0 || st.Batches > st.Records {
		t.Fatalf("implausible batch count %d for %d records", st.Batches, st.Records)
	}
	t.Logf("batches=%d records=%d largest=%d", st.Batches, st.Records, st.LargestBatch)
}

// TestBatcherCoalesces: a synchronized burst with a generous window must
// actually share batches (micro-batching, not one-by-one dispatch).
func TestBatcherCoalesces(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f, recs := fitTinyText(t)
	b := NewBatcher(f, 16, 100*time.Millisecond)
	defer b.Close()

	const burst = 12
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < burst; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			if _, err := b.Predict(context.Background(), recs[c%len(recs)]); err != nil {
				t.Errorf("predict: %v", err)
			}
		}(c)
	}
	close(start)
	wg.Wait()
	if st := b.Stats(); st.LargestBatch < 2 {
		t.Fatalf("burst of %d never coalesced (largest batch %d)", burst, st.LargestBatch)
	}
}

// TestBatcherClose: after Close, Predict fails with ErrBatcherClosed and
// does not hang.
func TestBatcherClose(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f, recs := fitTinyText(t)
	b := NewBatcher(f, 4, time.Millisecond)
	b.Close()
	if _, err := b.Predict(context.Background(), recs[0]); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("want ErrBatcherClosed, got %v", err)
	}
}

// TestBatcherCallerCancel: a Predict whose context dies while queued
// returns the context error.
func TestBatcherCallerCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f, recs := fitTinyText(t)
	// A huge delay window so the request sits queued until the context
	// fires.
	b := NewBatcher(f, 64, time.Minute)
	defer b.Close()
	// Occupy the window with one live request so the loop is waiting.
	go b.Predict(context.Background(), recs[0])
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := b.Predict(ctx, recs[1]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}
