package keystone

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fitTinyText(t *testing.T) (*Fitted[string, []float64], []string) {
	t.Helper()
	train := SyntheticReviews(100, 1)
	test := SyntheticReviews(20, 2)
	p := TextPipeline(TextConfig{NumFeatures: 400, Iterations: 5})
	f, err := p.Fit(context.Background(), train.Records, train.Labels, quickOpts()...)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	return f, test.Records
}

// TestBatcherCorrectness: every Predict through the micro-batcher must
// return exactly what a direct Transform returns, under heavy
// concurrency (this is also a -race stress of the serving stack).
func TestBatcherCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f, recs := fitTinyText(t)
	want := make([][]float64, len(recs))
	for i, r := range recs {
		w, err := f.Transform(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	b := NewBatcher(f, 8, 5*time.Millisecond)
	defer b.Close()

	const callers = 16
	const iters = 10
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	start := make(chan struct{})
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for it := 0; it < iters; it++ {
				i := (c*iters + it) % len(recs)
				got, err := b.Predict(context.Background(), recs[i])
				if err != nil {
					errs <- err
					return
				}
				for j := range want[i] {
					if got[j] != want[i][j] {
						errs <- errors.New("batched prediction diverged from direct Transform")
						return
					}
				}
			}
		}(c)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := b.Stats()
	if st.Records != callers*iters {
		t.Fatalf("served %d records, want %d", st.Records, callers*iters)
	}
	if st.Batches <= 0 || st.Batches > st.Records {
		t.Fatalf("implausible batch count %d for %d records", st.Batches, st.Records)
	}
	t.Logf("batches=%d records=%d largest=%d", st.Batches, st.Records, st.LargestBatch)
}

// TestBatcherCoalesces: a synchronized burst with a generous window must
// actually share batches (micro-batching, not one-by-one dispatch).
func TestBatcherCoalesces(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f, recs := fitTinyText(t)
	b := NewBatcher(f, 16, 100*time.Millisecond)
	defer b.Close()

	const burst = 12
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < burst; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			if _, err := b.Predict(context.Background(), recs[c%len(recs)]); err != nil {
				t.Errorf("predict: %v", err)
			}
		}(c)
	}
	close(start)
	wg.Wait()
	if st := b.Stats(); st.LargestBatch < 2 {
		t.Fatalf("burst of %d never coalesced (largest batch %d)", burst, st.LargestBatch)
	}
}

// TestBatcherClose: after Close, Predict fails with ErrBatcherClosed and
// does not hang.
func TestBatcherClose(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f, recs := fitTinyText(t)
	b := NewBatcher(f, 4, time.Millisecond)
	b.Close()
	if _, err := b.Predict(context.Background(), recs[0]); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("want ErrBatcherClosed, got %v", err)
	}
}

// atProcs runs fn as subtests pinned to single-proc and multi-proc
// schedules: on one proc the races are ordering bugs, on four they are
// true data races — the batcher must survive both.
func atProcs(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			fn(t)
		})
	}
}

// fitFn fits a trivial single-op pipeline for batcher plumbing tests —
// no estimator, no optimizer work, so the races dominate the runtime.
func fitFn(t *testing.T, name string, fn func(float64) []float64) *Fitted[float64, []float64] {
	t.Helper()
	p := Input[float64]()
	out := Then(p, NewOp(name, fn))
	f, err := out.Fit(context.Background(), []float64{1}, nil, WithOptimizerLevel(LevelNone))
	if err != nil {
		t.Fatalf("fit %s: %v", name, err)
	}
	return f
}

// TestBatcherCloseUnderLoad: Close racing a storm of concurrent Predict
// callers must neither hang nor panic; every call resolves to a result
// or ErrBatcherClosed, and Close returns only after in-flight flushes
// delivered.
func TestBatcherCloseUnderLoad(t *testing.T) {
	atProcs(t, func(t *testing.T) {
		f := fitFn(t, "spin", func(x float64) []float64 {
			time.Sleep(200 * time.Microsecond)
			return []float64{x}
		})
		b := NewBatcher(f, 4, 500*time.Microsecond)
		const callers = 8
		var wg sync.WaitGroup
		var served, closed atomic.Int64
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					out, err := b.Predict(context.Background(), float64(i))
					switch {
					case err == nil:
						if len(out) != 1 || out[0] != float64(i) {
							t.Errorf("wrong result %v for %d", out, i)
							return
						}
						served.Add(1)
					case errors.Is(err, ErrBatcherClosed):
						closed.Add(1)
						return
					default:
						t.Errorf("unexpected error: %v", err)
						return
					}
				}
			}()
		}
		time.Sleep(20 * time.Millisecond)
		b.Close()
		wg.Wait()
		if closed.Load() != callers {
			t.Fatalf("%d callers saw ErrBatcherClosed, want %d", closed.Load(), callers)
		}
		if served.Load() == 0 {
			t.Fatal("no requests served before Close")
		}
		// Close is idempotent for Predict: still ErrBatcherClosed.
		if _, err := b.Predict(context.Background(), 1); !errors.Is(err, ErrBatcherClosed) {
			t.Fatalf("post-Close Predict = %v", err)
		}
	})
}

// TestBatcherAbandonMidQueue: callers whose contexts die while queued are
// dropped before the pipeline runs — the flush serves only the survivors
// and the records counter proves the dead ones never executed.
func TestBatcherAbandonMidQueue(t *testing.T) {
	atProcs(t, func(t *testing.T) {
		f := fitFn(t, "echo", func(x float64) []float64 { return []float64{x} })
		// A wide-open window so requests sit queued until it expires.
		b := NewBatcher(f, 16, 120*time.Millisecond)
		defer b.Close()

		ctx, cancel := context.WithCancel(context.Background())
		var abandoned sync.WaitGroup
		for i := 0; i < 3; i++ {
			abandoned.Add(1)
			go func(i int) {
				defer abandoned.Done()
				if _, err := b.Predict(ctx, float64(100+i)); !errors.Is(err, context.Canceled) {
					t.Errorf("abandoned caller got %v, want Canceled", err)
				}
			}(i)
		}
		time.Sleep(10 * time.Millisecond) // let them enqueue into the open batch
		cancel()

		out, err := b.Predict(context.Background(), 7)
		if err != nil || out[0] != 7 {
			t.Fatalf("surviving caller got %v, %v", out, err)
		}
		abandoned.Wait()
		if st := b.Stats(); st.Records != 1 {
			t.Fatalf("pipeline executed %d records, want 1 (abandoned requests must be dropped)", st.Records)
		}
	})
}

// TestBatcherOverlappingFlush: with one batch stalled inside the
// pipeline, the loop must keep assembling and flushing subsequent
// batches — the old synchronous flush head-of-line-blocked here.
func TestBatcherOverlappingFlush(t *testing.T) {
	atProcs(t, func(t *testing.T) {
		gate := make(chan struct{})
		entered := make(chan struct{}, 1)
		// Sentinel 42 is absent from the training data, so Fit itself
		// never trips the gate.
		f := fitFn(t, "gated", func(x float64) []float64 {
			if x == 42 {
				entered <- struct{}{}
				<-gate
			}
			return []float64{x}
		})
		b := NewBatcher(f, 1, 100*time.Microsecond)
		defer b.Close()

		stalled := make(chan error, 1)
		go func() {
			_, err := b.Predict(context.Background(), 42)
			stalled <- err
		}()
		<-entered // batch 1 now occupies a flush slot

		// Batch 2 must complete while batch 1 is still executing.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		out, err := b.Predict(ctx, 2)
		if err != nil {
			t.Fatalf("second batch did not overlap the stalled first: %v", err)
		}
		if out[0] != 2 {
			t.Fatalf("second batch result %v", out)
		}
		close(gate)
		if err := <-stalled; err != nil {
			t.Fatalf("stalled batch failed: %v", err)
		}
	})
}

// TestBatcherSetLimitsLive: retargeting limits mid-traffic takes effect
// on subsequent batches and never disrupts service.
func TestBatcherSetLimitsLive(t *testing.T) {
	f := fitFn(t, "echo2", func(x float64) []float64 { return []float64{x} })
	b := NewBatcher(f, 4, time.Millisecond)
	defer b.Close()
	if _, err := b.Predict(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	b.SetLimits(64, 3*time.Millisecond)
	if mb, md := b.Limits(); mb != 64 || md != 3*time.Millisecond {
		t.Fatalf("Limits() = (%d, %v) after SetLimits", mb, md)
	}
	if _, err := b.Predict(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	b.SetLimits(0, 0) // non-positive restores defaults
	if mb, md := b.Limits(); mb != 32 || md != 2*time.Millisecond {
		t.Fatalf("Limits() = (%d, %v) after reset, want defaults", mb, md)
	}
	if snap := b.Latency(); snap.Samples < 2 {
		t.Fatalf("latency window recorded %d samples, want >= 2", snap.Samples)
	}
}

// TestBatcherCallerCancel: a Predict whose context dies while queued
// returns the context error.
func TestBatcherCallerCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f, recs := fitTinyText(t)
	// A huge delay window so the request sits queued until the context
	// fires.
	b := NewBatcher(f, 64, time.Minute)
	defer b.Close()
	// Occupy the window with one live request so the loop is waiting.
	go b.Predict(context.Background(), recs[0])
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := b.Predict(ctx, recs[1]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

// TestBatcherQueueDepthAndThroughput: QueueDepth reflects requests
// queued ahead of assembly, and the latency window reports a positive
// serving rate once traffic flows — the two signals admission control
// and the multi-objective tuner consume.
func TestBatcherQueueDepthAndThroughput(t *testing.T) {
	slow := Then(Input[int](), NewOp("sleepy", func(x int) []float64 {
		time.Sleep(2 * time.Millisecond)
		return []float64{float64(x)}
	}))
	f, err := slow.Fit(context.Background(), []int{1}, nil, WithOptimizerLevel(LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(f, 1, 100*time.Microsecond)
	defer b.Close()

	if d := b.QueueDepth(); d != 0 {
		t.Fatalf("idle QueueDepth = %d, want 0", d)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Predict(context.Background(), i); err != nil {
				t.Errorf("predict %d: %v", i, err)
			}
		}(i)
	}
	// With 1-record batches at 2ms each and 32 concurrent callers, the
	// queue must be observably non-empty at some point.
	deepSeen := false
	for i := 0; i < 200 && !deepSeen; i++ {
		if b.QueueDepth() > 0 {
			deepSeen = true
		}
		time.Sleep(500 * time.Microsecond)
	}
	wg.Wait()
	if !deepSeen {
		t.Error("QueueDepth never observed a queued request under a 32-caller flood")
	}
	if snap := b.Latency(); snap.Throughput <= 0 {
		t.Errorf("window Throughput = %v after 32 served requests, want > 0", snap.Throughput)
	}
}

// TestBatcherErrorPathObservations is the tuner-starvation regression:
// a failing batch must still feed the latency window (the request took
// real wall-clock time) and bump the failure counter — previously a run
// of errors left the window empty and the SLO autotuner blind.
func TestBatcherErrorPathObservations(t *testing.T) {
	f := fitFn(t, "echofail", func(x float64) []float64 { return []float64{x} })
	// A Fitted whose O lies about the pipeline's output type: every
	// TransformBatch fails the r.(O) assertion, which is exactly the
	// all-batches-error regime the window must survive.
	bad := &Fitted[float64, string]{inner: f.inner}
	b := NewBatcher(bad, 4, time.Millisecond)
	defer b.Close()

	const n = 6
	for i := 0; i < n; i++ {
		if _, err := b.Predict(context.Background(), float64(i)); err == nil {
			t.Fatal("predict through the type-lying pipeline must error")
		}
	}
	if snap := b.Latency(); snap.Samples != n {
		t.Fatalf("latency window holds %d samples after %d failed predicts, want %d (error-path starvation)", snap.Samples, n, n)
	}
	st := b.Stats()
	if st.Failed != n {
		t.Fatalf("Stats().Failed = %d after %d failed records, want %d", st.Failed, n, n)
	}
	if st.Records != n {
		t.Fatalf("Stats().Records = %d, want %d", st.Records, n)
	}
}

// TestBatcherBatchContext pins the derived batch context: it cancels
// once every watched caller is gone, and never cancels while a
// non-cancelable caller remains.
func TestBatcherBatchContext(t *testing.T) {
	f := fitFn(t, "echoctx", func(x float64) []float64 { return []float64{x} })
	b := NewBatcher(f, 4, time.Millisecond)
	defer b.Close()

	waitDone := func(ctx context.Context) bool {
		select {
		case <-ctx.Done():
			return true
		case <-time.After(time.Second):
			return false
		}
	}
	stillLive := func(ctx context.Context) bool {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(30 * time.Millisecond):
			return true
		}
	}

	t.Run("cancels when all callers leave", func(t *testing.T) {
		ctx1, cancel1 := context.WithCancel(context.Background())
		ctx2, cancel2 := context.WithCancel(context.Background())
		defer cancel2()
		bctx, cancel := b.batchContext([]batchReq[float64, []float64]{{ctx: ctx1}, {ctx: ctx2}})
		defer cancel()
		cancel1()
		if !stillLive(bctx) {
			t.Fatal("batch context died while one caller was still live")
		}
		cancel2()
		if !waitDone(bctx) {
			t.Fatal("batch context did not cancel after every caller left")
		}
	})

	t.Run("pinned by a non-cancelable caller", func(t *testing.T) {
		ctx1, cancel1 := context.WithCancel(context.Background())
		bctx, cancel := b.batchContext([]batchReq[float64, []float64]{
			{ctx: ctx1}, {ctx: context.Background()},
		})
		defer cancel()
		cancel1()
		if !stillLive(bctx) {
			t.Fatal("batch context canceled despite a non-cancelable caller in the batch")
		}
	})

	t.Run("cancel releases watchers", func(t *testing.T) {
		ctx1, cancel1 := context.WithCancel(context.Background())
		defer cancel1()
		bctx, cancel := b.batchContext([]batchReq[float64, []float64]{{ctx: ctx1}})
		cancel() // the TransformBatch-returned path
		if !waitDone(bctx) {
			t.Fatal("explicit cancel did not close the batch context")
		}
	})
}

// TestBatcherAbandonedBatchCancelsPipeline: when every caller of an
// executing batch disconnects, the derived context must abort the
// pipeline work instead of burning it to completion for nobody.
func TestBatcherAbandonedBatchCancelsPipeline(t *testing.T) {
	entered := make(chan struct{}, 1)
	f := fitFn(t, "slowpoke", func(x float64) []float64 {
		select {
		case entered <- struct{}{}:
		default:
		}
		time.Sleep(2 * time.Millisecond)
		return []float64{x}
	})
	// Large enough that TransformBatch takes the fan-out path, which
	// checks the context between records; all callers share one context
	// and abandon together mid-execution.
	const n = 80
	b := NewBatcher(f, n, 50*time.Millisecond)
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var canceled atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Predict(ctx, float64(i)); errors.Is(err, context.Canceled) {
				canceled.Add(1)
			}
		}(i)
	}
	<-entered // the batch is executing
	start := time.Now()
	cancel()
	wg.Wait()
	elapsed := time.Since(start)
	if canceled.Load() != n {
		t.Fatalf("%d callers saw Canceled, want %d", canceled.Load(), n)
	}
	// 80 records at 2ms each is 160ms of serial work; an aborted batch
	// unwinds much sooner. The bound is loose to stay robust on slow CI.
	if elapsed > 120*time.Millisecond {
		t.Errorf("abandoned batch took %v to unwind, want prompt cancellation", elapsed)
	}
}

// TestBatcherQueueDepthCountsAssembly is the under-count regression:
// requests pulled out of the channel into the forming batch must still
// show in QueueDepth, or admission's queue watermark misses up to
// maxBatch-1 waiting requests.
func TestBatcherQueueDepthCountsAssembly(t *testing.T) {
	f := fitFn(t, "echodepth", func(x float64) []float64 { return []float64{x} })
	// Window far longer than the observation loop: the three requests sit
	// in the forming batch (not the channel) the whole time.
	b := NewBatcher(f, 8, 300*time.Millisecond)
	defer b.Close()

	if d := b.QueueDepth(); d != 0 {
		t.Fatalf("idle QueueDepth = %d, want 0", d)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Predict(context.Background(), float64(i)); err != nil {
				t.Errorf("predict: %v", err)
			}
		}(i)
	}
	// The loop drains the channel into the assembling batch almost
	// immediately; from then until the window expires the channel is
	// empty and only the assembling counter can report the three waiters.
	seen := false
	deadline := time.Now().Add(250 * time.Millisecond)
	for time.Now().Before(deadline) {
		if len(b.reqs) == 0 && b.QueueDepth() == 3 {
			seen = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !seen {
		t.Fatal("QueueDepth never reported the 3 in-assembly requests (channel-only count)")
	}
	wg.Wait()
	// Settled: assembly handed off and completed, depth returns to zero.
	deadline = time.Now().Add(time.Second)
	for time.Now().Before(deadline) && b.QueueDepth() != 0 {
		time.Sleep(time.Millisecond)
	}
	if d := b.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth = %d after all requests served, want 0", d)
	}
}
