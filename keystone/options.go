package keystone

import (
	"runtime"

	"keystoneml/internal/cluster"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
	"keystoneml/internal/optimizer"
)

// Level selects how much of the whole-pipeline optimizer runs at Fit
// time, matching the three configurations compared in the paper's
// Figure 9.
type Level int

const (
	// LevelFull (the default) runs operator-level selection plus the
	// whole-pipeline optimizations — the full KeystoneML configuration.
	LevelFull Level = iota
	// LevelPipeline runs CSE and automatic materialization with default
	// physical operators ("Pipe Only").
	LevelPipeline
	// LevelNone executes default operators with no caching at all — the
	// unoptimized baseline.
	LevelNone
)

func (l Level) internal() optimizer.Level {
	switch l {
	case LevelNone:
		return optimizer.LevelNone
	case LevelPipeline:
		return optimizer.LevelPipeline
	default:
		return optimizer.LevelFull
	}
}

// CachePolicy selects how intermediate results are kept during Fit.
type CachePolicy int

const (
	// CacheAuto (the default) pins exactly the materialization set the
	// optimizer's greedy planner chooses under the cache budget.
	CacheAuto CachePolicy = iota
	// CacheLRU keeps intermediates under the budget with
	// least-recently-used eviction (a Spark-style baseline).
	CacheLRU
	// CacheNone disables materialization entirely: every re-access
	// recomputes.
	CacheNone
)

// SchedulerPolicy selects how the parallel DAG scheduler orders ready
// work during Fit.
type SchedulerPolicy int

const (
	// SchedulerAuto (the default) dispatches ready nodes by the shared
	// schedule plan's priorities — longest downstream critical path
	// first, ties broken toward outputs the materialization plan pins
	// and toward nodes that unlock the widest stages — and enables
	// speculative cross-pass retention: an intermediate the pinned set
	// rejected is kept in the cache budget's free headroom while an
	// estimator that will refetch it is still fitting.
	SchedulerAuto SchedulerPolicy = iota
	// SchedulerFIFO dispatches ready nodes in pass-plan order with no
	// speculative retention (the scheduler's behaviour before the
	// shared schedule plan existed), kept for comparisons.
	SchedulerFIFO
)

// KernelBackend selects the linalg kernel dispatch mode underneath
// every operator (GEMM, QR/SVD panel updates, dot/axpy).
type KernelBackend int

const (
	// KernelAuto (the default) dispatches each kernel call by shape
	// against crossover thresholds measured by the cluster
	// microbenchmarks — the paper's cost-model discipline applied one
	// level down. With no measurement installed it behaves like
	// KernelReference.
	KernelAuto KernelBackend = iota
	// KernelReference pins the original straight-line kernels.
	KernelReference
	// KernelBlocked pins the cache-blocked vectorized parallel kernels.
	KernelBlocked
)

func (k KernelBackend) internal() linalg.BackendMode {
	switch k {
	case KernelReference:
		return linalg.ModeReference
	case KernelBlocked:
		return linalg.ModeBlocked
	default:
		return linalg.ModeAuto
	}
}

// fitConfig is the resolved option set for one Fit call.
type fitConfig struct {
	level       Level
	cachePolicy CachePolicy
	cacheBudget int64
	workers     int
	partitions  int
	numClasses  int
	sampleSizes [2]int
	nodes       int
	scheduler   SchedulerPolicy
	kernels     KernelBackend
	prefix      *PrefixCache
}

func defaultFitConfig() fitConfig {
	return fitConfig{
		level:       LevelFull,
		cachePolicy: CacheAuto,
		workers:     0, // NumCPU
		nodes:       8,
	}
}

func (c fitConfig) partitionsOr(n int) int {
	if c.partitions > 0 {
		return c.partitions
	}
	p := runtime.NumCPU()
	if p > n && n > 0 {
		p = n
	}
	return p
}

// Option configures a Fit call; see the With* constructors.
type Option func(*fitConfig)

// WithOptimizerLevel selects the optimizer configuration (default
// LevelFull).
func WithOptimizerLevel(l Level) Option {
	return func(c *fitConfig) { c.level = l }
}

// WithWorkers bounds execution parallelism: both the partition workers of
// the dataflow engine and the DAG scheduler's worker pool. 0 (the
// default) uses NumCPU; 1 selects the sequential depth-first executor,
// whose recompute counts are deterministic.
func WithWorkers(n int) Option {
	return func(c *fitConfig) { c.workers = n }
}

// WithPartitions fixes the number of partitions training data is split
// into (default: NumCPU, capped by the record count).
func WithPartitions(n int) Option {
	return func(c *fitConfig) { c.partitions = n }
}

// WithCacheBudget bounds the bytes of intermediate state kept in memory
// during Fit; 0 (the default) means unlimited.
func WithCacheBudget(bytes int64) Option {
	return func(c *fitConfig) { c.cacheBudget = bytes }
}

// WithCachePolicy selects the materialization strategy (default
// CacheAuto).
func WithCachePolicy(p CachePolicy) Option {
	return func(c *fitConfig) { c.cachePolicy = p }
}

// WithNumClasses declares the label class count for the solver cost
// models; by default it is inferred from the label vector width.
func WithNumClasses(k int) Option {
	return func(c *fitConfig) { c.numClasses = k }
}

// WithSampleSizes sets the two profiling sample sizes the optimizer uses
// for linear extrapolation (default 256 and 512).
func WithSampleSizes(s1, s2 int) Option {
	return func(c *fitConfig) { c.sampleSizes = [2]int{s1, s2} }
}

// WithSchedulerPolicy selects the parallel DAG scheduler's dispatch
// strategy (default SchedulerAuto: schedule-plan priority dispatch plus
// speculative cross-pass retention; SchedulerFIFO restores plain
// ready-order dispatch with retention off).
func WithSchedulerPolicy(p SchedulerPolicy) Option {
	return func(c *fitConfig) { c.scheduler = p }
}

// WithKernelBackend selects the linalg kernel dispatch mode (default
// KernelAuto). The setting is process-global — the kernel registry is
// shared by every pipeline in the process — and is applied at Fit
// entry; both backends produce bit-identical float64 results (see
// ARCHITECTURE.md Contract 5), so the choice affects speed, not output.
func WithKernelBackend(k KernelBackend) Option {
	return func(c *fitConfig) { c.kernels = k }
}

// applyKernelBackend publishes the selected dispatch mode and, for Auto,
// installs the measured crossover thresholds (cached after first run).
func (c fitConfig) applyKernelBackend() {
	linalg.SetBackendMode(c.kernels.internal())
	if c.kernels == KernelAuto {
		cluster.InstallKernelCrossover()
	}
}

// WithClusterNodes sets the modeled cluster size fed into the operator
// cost models (default 8 local nodes).
func WithClusterNodes(n int) Option {
	return func(c *fitConfig) {
		if n > 0 {
			c.nodes = n
		}
	}
}

// optimizerConfig lowers the resolved options onto the internal optimizer.
func (c fitConfig) optimizerConfig(classes int) optimizer.Config {
	return optimizer.Config{
		Level:          c.level.internal(),
		Resources:      cluster.Local(c.nodes),
		MemBudgetBytes: c.budgetForPlanner(),
		NumClasses:     classes,
		SampleSizes:    c.sampleSizes,
		Parallelism:    c.workers,
	}
}

// budgetForPlanner feeds the cache budget to the greedy materialization
// planner only when the pinned-set policy will actually enforce it.
func (c fitConfig) budgetForPlanner() int64 {
	if c.cachePolicy == CacheAuto {
		return c.cacheBudget
	}
	return 0
}

// cache builds the cache manager the executor runs with.
func (c fitConfig) cache(plan *optimizer.Plan) *engine.CacheManager {
	switch c.cachePolicy {
	case CacheNone:
		return nil
	case CacheLRU:
		return engine.NewCacheManager(c.cacheBudget, engine.NewLRUPolicy())
	default:
		return plan.DefaultCache(c.cacheBudget)
	}
}
