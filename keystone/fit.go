package keystone

import (
	"context"
	"fmt"
	"sort"
	"time"

	"keystoneml/internal/core"
	"keystoneml/internal/engine"
	"keystoneml/internal/linalg"
	"keystoneml/internal/optimizer"
)

// Fit trains the pipeline on records (with one-hot label vectors for
// supervised pipelines; nil for unsupervised) and returns the fitted
// artifact. The pipeline itself is not mutated — optimization rewrites a
// private clone of the DAG — so the same Pipeline value can be fit again
// with different data or options.
//
// ctx cancels the whole call cooperatively: profiling, estimator fits
// (mid-pass, between partition dispatches), and the DAG schedulers all
// poll it, and errors.Is(err, context.Canceled) (or DeadlineExceeded)
// reports why a canceled Fit stopped.
func (p *Pipeline[I, O]) Fit(ctx context.Context, records []I, labels [][]float64, opts ...Option) (fitted *Fitted[I, O], err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("keystone: Fit requires at least one training record")
	}
	if labels != nil && len(labels) != len(records) {
		return nil, fmt.Errorf("keystone: %d records but %d labels", len(records), len(labels))
	}
	if labels == nil && p.usesLabels() {
		return nil, fmt.Errorf("keystone: pipeline contains a supervised estimator but Fit was called with nil labels")
	}
	// The public boundary converts internal panics (operator type
	// mismatches, user NewOp functions panicking on a record) into
	// errors instead of crashing the caller.
	defer func() {
		if r := recover(); r != nil {
			fitted, err = nil, fmt.Errorf("keystone: fit panicked: %v", r)
		}
	}()
	cfg := defaultFitConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	// Kernel dispatch mode is process-global (the linalg registry is
	// shared); Auto additionally installs the measured crossover, cached
	// after the first Fit in the process.
	cfg.applyKernelBackend()
	// Kernel tile fan-out shares the engine's worker budget so nested
	// parallelism degrades to serial instead of oversubscribing.
	linalg.SetKernelParallelism(engine.NewContext(cfg.workers).Parallelism)
	classes := cfg.numClasses
	if classes == 0 && len(labels) > 0 {
		classes = len(labels[0])
	}

	parts := cfg.partitionsOr(len(records))
	boxed := make([]any, len(records))
	for i, r := range records {
		boxed[i] = r
	}
	data := engine.FromSlice(boxed, parts)
	var lab *engine.Collection
	if labels != nil {
		boxedLab := make([]any, len(labels))
		for i, l := range labels {
			boxedLab[i] = l
		}
		lab = engine.FromSlice(boxedLab, parts)
	}

	// Optimize and train a private clone; p's DAG stays pristine.
	g := p.g.Clone()
	g.Sink = g.Nodes[p.out.ID]

	// Logical operator names, captured before operator substitution
	// rewrites the nodes in place, so FitInfo can report
	// logical -> physical.
	logical := make(map[int]string, len(g.Nodes))
	for _, n := range g.Nodes {
		logical[n.ID] = n.OpName()
	}

	plan, err := optimizer.OptimizeContext(ctx, g, data, lab, cfg.optimizerConfig(classes))
	if err != nil {
		return nil, fmt.Errorf("keystone: optimize: %w", err)
	}
	plan.DispatchFIFO = cfg.scheduler == SchedulerFIFO
	if cfg.prefix != nil {
		// Scope the shared keys by the training data shape: equal-data
		// fits (the PrefixCache contract) key identically, while a cache
		// mistakenly reused across differently sized subsets degrades to
		// zero sharing instead of serving wrong intermediates.
		plan.Shared = cfg.prefix.sc
		plan.SharedScope = fmt.Sprintf("n=%d;labeled=%t", len(records), labels != nil)
	}
	models, _, report, err := plan.ExecuteContext(ctx, data, lab, cfg.workers, cfg.cache(plan))
	if err != nil {
		return nil, fmt.Errorf("keystone: fit: %w", err)
	}

	inner := core.NewFitted(plan.Graph, models, engine.NewContext(cfg.workers))
	return &Fitted[I, O]{
		inner:  inner,
		info:   newFitInfo(plan, report, logical),
		report: nodeReports(plan.Graph, report),
	}, nil
}

// usesLabels reports whether any estimator reachable from the output
// reads the label source.
func (p *Pipeline[I, O]) usesLabels() bool {
	seen := make(map[int]bool)
	var walk func(n *core.Node) bool
	walk = func(n *core.Node) bool {
		if seen[n.ID] {
			return false
		}
		seen[n.ID] = true
		if n == p.g.Labels {
			return true
		}
		for _, d := range n.Deps {
			if walk(d) {
				return true
			}
		}
		return false
	}
	return walk(p.out)
}

// Fitted is a trained pipeline from I records to O records. It is
// immutable and safe for any number of concurrent callers; Transform is
// the single-record serving hot path (no batch assembly, no partition
// machinery, no goroutines).
type Fitted[I, O any] struct {
	inner  *core.Fitted
	info   FitInfo
	report []NodeReport
}

// Transform runs one record through the fitted pipeline. ctx is checked
// on entry (single-record evaluation is short; it does not poll
// mid-chain).
func (f *Fitted[I, O]) Transform(ctx context.Context, record I) (O, error) {
	var zero O
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
	}
	out := f.inner.TransformOne(record)
	o, ok := out.(O)
	if !ok {
		return zero, fmt.Errorf("keystone: pipeline produced %T, want %T", out, zero)
	}
	return o, nil
}

// TransformBatch runs a batch through the fitted pipeline: small batches
// record-by-record on the calling goroutine, large ones fanned out across
// the engine workers, with bit-identical outputs either way. ctx is
// polled between records; on cancellation the partial batch is discarded
// and the context error returned.
func (f *Fitted[I, O]) TransformBatch(ctx context.Context, records []I) ([]O, error) {
	boxed := make([]any, len(records))
	for i, r := range records {
		boxed[i] = r
	}
	raw, err := f.inner.TransformBatch(ctx, boxed)
	if err != nil {
		return nil, err
	}
	out := make([]O, len(raw))
	for i, r := range raw {
		o, ok := r.(O)
		if !ok {
			return nil, fmt.Errorf("keystone: pipeline produced %T, want %T", r, out[i])
		}
		out[i] = o
	}
	return out, nil
}

// Info reports what the optimizer decided and what training cost.
func (f *Fitted[I, O]) Info() FitInfo { return f.info }

// TrainReport returns per-operator execution statistics from the Fit run
// (compute counts, cache hits, local time), in DAG order.
func (f *Fitted[I, O]) TrainReport() []NodeReport {
	out := make([]NodeReport, len(f.report))
	copy(out, f.report)
	return out
}

// FitInfo summarizes one Fit call: optimizer decisions and wall times.
type FitInfo struct {
	// OptimizeTime is the optimization overhead (sampling + profiling +
	// planning); TrainTime the full-data execution.
	OptimizeTime time.Duration
	TrainTime    time.Duration
	// CSEMerged counts DAG nodes eliminated as common subexpressions.
	CSEMerged int
	// Cached lists the operators whose outputs the planner pinned in
	// memory for the fit.
	Cached []string
	// Chosen maps optimizable nodes ("#id logical-name", captured before
	// substitution) to the physical implementation the operator-level
	// optimizer selected for them.
	Chosen map[string]string
	// EstimatedStateBytes is the profiled estimate of all intermediate
	// state the pipeline produces over the full dataset — the quantity a
	// cache budget is set against. Zero when profiling did not run
	// (LevelNone).
	EstimatedStateBytes int64
}

// NodeReport is one operator's execution record from a Fit run.
type NodeReport struct {
	Name      string
	Kind      string
	Computes  int // times the operator ran
	CacheHits int // accesses served from the cache
	Coalesced int // accesses coalesced onto in-flight computes
	// SharedHits counts accesses served by a WithPrefixCache shared
	// cache — work another fit (or an earlier shared access) already did.
	SharedHits int
	Time       time.Duration // total local compute time
}

func newFitInfo(plan *optimizer.Plan, report *core.ExecReport, logical map[int]string) FitInfo {
	info := FitInfo{
		OptimizeTime: plan.OptimizeTime,
		TrainTime:    report.Total,
		CSEMerged:    plan.CSEMerged,
		Chosen:       make(map[string]string, len(plan.Chosen)),
	}
	names := make(map[int]string, len(plan.Graph.Nodes))
	for _, n := range plan.Graph.Nodes {
		names[n.ID] = n.OpName()
	}
	for _, nid := range plan.CacheSet {
		info.Cached = append(info.Cached, names[nid])
	}
	sort.Strings(info.Cached)
	for id, op := range plan.Chosen {
		// Key by node id + pre-substitution logical name: the graph node
		// itself now carries the physical operator, and two branches can
		// share a logical name.
		info.Chosen[fmt.Sprintf("#%d %s", id, logical[id])] = op
	}
	if plan.Profile != nil {
		for _, np := range plan.Profile.Nodes {
			info.EstimatedStateBytes += np.SizeBytes
		}
	}
	return info
}

func nodeReports(g *core.Graph, report *core.ExecReport) []NodeReport {
	ids := make([]int, 0, len(report.Nodes))
	for id := range report.Nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]NodeReport, 0, len(ids))
	for _, id := range ids {
		s := report.Nodes[id]
		out = append(out, NodeReport{
			Name:       s.Name,
			Kind:       s.Kind.String(),
			Computes:   s.Computes,
			CacheHits:  s.Hits,
			Coalesced:  s.Coalesced,
			SharedHits: s.SharedHits,
			Time:       s.Time,
		})
	}
	return out
}
