package keystone_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	"keystoneml/keystone"
)

// ExamplePipeline_Fit builds a two-step custom pipeline, fits it, and
// serves one record through the fitted artifact — the full
// build -> Fit -> Transform lifecycle on deterministic operators.
// Real pipelines chain the built-in operators (Tokenizer, TermFrequency,
// LogisticRegression, ...) or a prebuilt like TextPipeline the same way.
func ExamplePipeline_Fit() {
	// Each Then step is type-checked at compile time:
	// string -> word count -> [n, n^2] feature vector.
	words := keystone.Then(keystone.Input[string](),
		keystone.NewOp("wordCount", func(s string) float64 {
			return float64(len(strings.Fields(s)))
		}))
	features := keystone.Then(words,
		keystone.NewOp("quadratic", func(n float64) []float64 {
			return []float64{n, n * n}
		}))

	// Fit optimizes and trains a private clone of the DAG; the pipeline
	// value stays reusable. Labels are nil — no supervised estimator here.
	fitted, err := features.Fit(context.Background(),
		[]string{"some training text", "more text"}, nil,
		keystone.WithOptimizerLevel(keystone.LevelNone))
	if err != nil {
		log.Fatal(err)
	}

	// Transform is the single-record serving hot path; TransformBatch
	// fans large batches across the engine workers.
	out, err := fitted.Transform(context.Background(), "one two three")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	// Output: [3 9]
}
